(** Fail-slow gray failure (figure-style experiment): GET tail latency
    under a 10× compute slowdown on one node, comparing the defended
    configuration (hedged CRRS reads, adaptive timeouts, slow-outlier
    escalation, deadline shedding) against the naive static-timeout
    baseline and the fault-free tail. *)

type point = { label : string; report : Leed_fault.Fault.Chaos.report }

val points : ?seed:int -> ?fast:bool -> unit -> point list
(** Three same-seed chaos runs: fault-free, fail-slow naive, fail-slow
    hedged — in that order. *)

val run : unit -> unit
(** Print the comparison table and the p99.9 degradation ratios. *)
