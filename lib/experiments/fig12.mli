(** Figure 12 (appendix): single-node throughput as the PUT fraction
    grows, FAWN-DS on a Pi vs LEED on a SmartNIC JBOF. *)

val run : unit -> unit
