(** Shared infrastructure for the paper-reproduction experiments: scaled
    platforms, backend-generic system builders, and the single
    closed-/open-loop measurement path every figure uses.

    All three systems (LEED, FAWN, KVell) are built, preloaded, driven,
    and measured through {!Leed_core.Backend} — an experiment names a
    backend, gets a {!setup}, and receives {!Leed_core.Backend.metrics}
    back; no per-system client shapes leak through. *)

open Leed_core

(** {1 Scaled platforms and store sizing} *)

val scale_ssd :
  ?capacity:int -> Leed_blockdev.Blockdev.profile -> Leed_blockdev.Blockdev.profile

val leed_platform : ?ssd_capacity:int -> unit -> Leed_platform.Platform.t
val server_platform : ?ssd_capacity:int -> unit -> Leed_platform.Platform.t
val pi_platform : ?sd_capacity:int -> unit -> Leed_platform.Platform.t

val store_config :
  ?nsegments:int ->
  ?subcompactions:int ->
  ?prefetch:bool ->
  ?compaction_window:int ->
  unit ->
  Store.config

val engine_config :
  ?partitions_per_ssd:int ->
  ?swap:bool ->
  ?swap_threshold:int ->
  ?store_cfg:Store.config ->
  unit ->
  Engine.config

(** {1 Backend-generic setup} *)

type setup = { backend : Backend.t; clients : Backend.client list }

val attach_clients : ?nclients:int -> Backend.t -> setup
(** [nclients] front-end endpoints (default 4) on the given backend. *)

(** Packing helpers: lift a concrete cluster behind the service boundary. *)

val leed_backend : Cluster.t -> Backend.t
val fawn_backend : Leed_baselines.Fawn_cluster.t -> Backend.t
val kvell_backend : Leed_baselines.Kvell_cluster.t -> Backend.t

(** {1 System builders} *)

val make_leed_cluster :
  ?nnodes:int ->
  ?r:int ->
  ?crrs:bool ->
  ?flow_control:bool ->
  ?swap:bool ->
  ?cache:Netcache.config ->
  ?engine_cfg:Engine.config ->
  ?platform:Leed_platform.Platform.t ->
  unit ->
  Cluster.t
(** The raw LEED cluster, for experiments that poke cluster-level
    machinery (fig9's join/leave) in addition to serving ops through the
    boundary. [cache] arms the in-network cache when its mode is
    [Ttl_lru] (default off). *)

val setup_of_cluster : ?nclients:int -> Cluster.t -> setup

val make_leed :
  ?nnodes:int ->
  ?r:int ->
  ?nclients:int ->
  ?crrs:bool ->
  ?flow_control:bool ->
  ?swap:bool ->
  ?cache:Netcache.config ->
  ?engine_cfg:Engine.config ->
  ?platform:Leed_platform.Platform.t ->
  unit ->
  setup

val make_fawn :
  ?nnodes:int -> ?r:int -> ?nclients:int -> ?dram_for_index:int -> unit -> setup

val make_kvell :
  ?nnodes:int ->
  ?r:int ->
  ?nclients:int ->
  ?object_size:int ->
  ?platform:Leed_platform.Platform.t ->
  unit ->
  setup

val backend_names : string list
(** ["leed"; "fawn"; "kvell"] — selector names for CLIs. *)

val setup_of_name : ?nclients:int -> ?nnodes:int -> ?ssds:int -> string -> setup
(** Build a system by selector name with its comparison-default sizing;
    raises [Invalid_argument] on an unknown name. [nnodes] overrides the
    cluster size (JBOF count) and [ssds] the drives per JBOF — the
    cluster-scale knobs behind [leed smoke --jbofs/--ssds] and
    [bench ycsb --jbofs]. FAWN nodes model a single flash device, so
    [ssds] is ignored there. *)

(** {1 Driving and measuring} *)

val rr_execute : setup -> Leed_workload.Workload.op -> unit
(** Round-robin an op stream over the setup's front-end endpoints. *)

val preload : setup -> nkeys:int -> value_size:int -> unit
(** Load keys [0..nkeys-1] at version 0, 8-way parallel. *)

val measure_closed :
  label:string ->
  setup:setup ->
  clients:int ->
  duration:float ->
  gen:Leed_workload.Workload.gen ->
  unit ->
  Backend.metrics
(** [clients] closed-loop workers for [duration] simulated seconds;
    counters and power are captured from the setup's backend. *)

val measure_open :
  ?drain:float ->
  label:string ->
  setup:setup ->
  rate:float ->
  duration:float ->
  gen:Leed_workload.Workload.gen ->
  unit ->
  Backend.metrics
(** Poisson arrivals at [rate] for [duration] simulated seconds. *)

val report_metrics : Backend.metrics -> unit
(** One-line dump of the unified metrics record. *)

(** {1 Energy and default sizes} *)

val cluster_watts : Leed_platform.Platform.t -> int -> float
(** The paper's measured wall power: per-platform watts × node count. *)

val queries_per_joule : throughput:float -> watts:float -> float

val default_nkeys : int
val default_duration : float
val default_clients : int

val time_scale : float ref
(** Global knob for quick runs: multiplies every measurement window
    ([bench fast] sets it below 1). *)

val dur : float -> float
(** [dur x = x *. !time_scale]. *)
