(** Figure 5: energy efficiency (K queries per Joule) of the three
    persistent KV systems across the six YCSB workloads, for 256 B and
    1 KB objects, all driven through the backend-generic boundary. *)

val run : unit -> unit
