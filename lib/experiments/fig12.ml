(* Figure 12 (appendix): single-node throughput as the PUT fraction grows,
   for FAWN-DS on a Raspberry Pi and LEED on a SmartNIC JBOF, 256 B and
   1 KB objects. LEED dips slightly with more PUTs (3 accesses vs 2);
   FAWN speeds up (log-structured buffered appends beat SD-card reads). *)

open Leed_sim
open Leed_core
open Leed_platform
open Leed_workload
open Leed_baselines
open Leed_blockdev

let fractions = [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]

let nkeys = 2_000

let leed_throughput ~object_size ~put_frac =
  Sim.run (fun () ->
      let platform = Exp_common.leed_platform () in
      let e = Engine.create ~config:(Exp_common.engine_config ()) platform in
      Engine.start e;
      let vsize = object_size - Workload.key_size in
      let npart = Engine.npartitions e in
      let pid_of id = Codec.hash_key (Workload.key_of_id id) mod npart in
      Sim.fork_join
        (List.init 16 (fun w () ->
             let lo = w * nkeys / 16 and hi = ((w + 1) * nkeys / 16) - 1 in
             for id = lo to hi do
               ignore
                 (Engine.submit e ~pid:(pid_of id)
                    (Engine.Put (Workload.key_of_id id, Workload.value_for ~id ~version:0 ~size:vsize)))
             done));
      let rng = Rng.create 31 in
      let n = ref 0 in
      let t0 = Sim.now () in
      let stop = t0 +. 0.1 in
      let worker () =
        while not (Sim.reached stop) do
          let id = Rng.int rng nkeys in
          let k = Workload.key_of_id id in
          (if Rng.float rng < put_frac then
             ignore
               (Engine.submit e ~pid:(pid_of id)
                  (Engine.Put (k, Workload.value_for ~id ~version:1 ~size:vsize)))
           else ignore (Engine.submit e ~pid:(pid_of id) (Engine.Get k)));
          incr n
        done
      in
      Sim.fork_join (List.init 192 (fun _ () -> worker ()));
      float_of_int !n /. (Sim.now () -. t0))

let fawn_pi_throughput ~object_size ~put_frac =
  Sim.run (fun () ->
      let platform = Exp_common.pi_platform () in
      let dev = Blockdev.create ~rng:(Rng.create 3) platform.Platform.ssd in
      let log =
        Circular_log.create ~name:"pi.log" ~dev ~dev_id:0 ~base:0 ~size:(Blockdev.capacity dev)
      in
      let cpu = Platform.Cpu.create platform in
      let config =
        {
          Fawn_store.default_config with
          Fawn_store.dram_budget = 16 * 1024 * 1024;
          charge = (fun cycles -> Platform.Cpu.execute cpu ~cycles);
        }
      in
      let s = Fawn_store.create ~config ~log () in
      Fawn_store.run_flusher s;
      Fawn_store.run_compactor s;
      let lock = Sim.Resource.create ~name:"fawnds.lock" ~capacity:1 () in
      let vsize = object_size - Workload.key_size in
      for id = 0 to nkeys - 1 do
        Sim.Resource.with_ lock (fun () ->
            Fawn_store.put s (Workload.key_of_id id) (Workload.value_for ~id ~version:0 ~size:vsize))
      done;
      let rng = Rng.create 32 in
      let n = ref 0 in
      let t0 = Sim.now () in
      let stop = t0 +. 0.3 in
      let worker () =
        while not (Sim.reached stop) do
          let id = Rng.int rng nkeys in
          let k = Workload.key_of_id id in
          Sim.Resource.with_ lock (fun () ->
              if Rng.float rng < put_frac then
                Fawn_store.put s k (Workload.value_for ~id ~version:1 ~size:vsize)
              else ignore (Fawn_store.get s k));
          incr n
        done
      in
      Sim.fork_join (List.init 8 (fun _ () -> worker ()));
      float_of_int !n /. (Sim.now () -. t0))

let run () =
  let series f = List.map (fun frac -> f ~put_frac:frac /. 1e3) fractions in
  let xs = List.map (fun f -> Printf.sprintf "%.0f%%" (100. *. f)) fractions in
  Leed_stats.Report.series
    ~title:"Figure 12: throughput (KQPS) vs PUT fraction, FAWN(Pi) vs LEED(JBOF)" ~x_label:"PUT%"
    ~xs
    [
      ("FAWNDS-1KB", series (fun ~put_frac -> fawn_pi_throughput ~object_size:1024 ~put_frac));
      ("FAWNDS-256B", series (fun ~put_frac -> fawn_pi_throughput ~object_size:256 ~put_frac));
      ("LEED-1KB", series (fun ~put_frac -> leed_throughput ~object_size:1024 ~put_frac));
      ("LEED-256B", series (fun ~put_frac -> leed_throughput ~object_size:256 ~put_frac));
    ];
  print_endline
    "paper: LEED drops ~3% per +10% PUT; FAWN rises with PUTs (log-structured writes beat reads)"
