(* Figures 6 and 14: average latency vs throughput for the six YCSB
   workloads — Embedded-FAWN(10), Embedded-FAWN(100) (the paper's ideal
   10x linear-scaling extrapolation), Server-KVell, and SmartNIC-LEED.
   Open-loop rate sweeps at fractions of each system's saturation, every
   system driven through the backend-generic boundary. *)

open Leed_sim
open Leed_core
open Leed_workload

let fractions = [ 0.25; 0.5; 0.75; 0.95 ]

type sweep_point = { thr : float; avg_ms : float }

(* Find saturation closed-loop, then sweep open-loop rates. *)
let sweep ~gen_of ~setup ~clients () =
  let sat =
    let m =
      Exp_common.measure_closed ~label:"sat" ~setup ~clients ~duration:(Exp_common.dur 0.1)
        ~gen:(gen_of 0) ()
    in
    m.Backend.throughput
  in
  List.mapi
    (fun i frac ->
      let rate = frac *. sat in
      let m =
        Exp_common.measure_open ~label:"pt" ~setup ~rate ~duration:(Exp_common.dur 0.12)
          ~gen:(gen_of (i + 1)) ()
      in
      { thr = m.Backend.throughput; avg_ms = m.Backend.avg_lat *. 1e3 })
    fractions

(* Per-system sizing, same saturation knobs as Figure 5. *)
type sysdesc = { make : unit -> Exp_common.setup; nkeys : int; seed_base : int; workers : int }

let descriptors ~object_size =
  [
    ("leed", { make = (fun () -> Exp_common.make_leed ~nclients:6 ()); nkeys = 8_000; seed_base = 100; workers = 192 });
    ( "kvell",
      {
        make = (fun () -> Exp_common.make_kvell ~nclients:6 ~object_size ());
        nkeys = 8_000;
        seed_base = 200;
        workers = 640;
      } );
    ( "fawn",
      {
        make = (fun () -> Exp_common.make_fawn ~nnodes:10 ~nclients:6 ());
        nkeys = 2_000;
        seed_base = 300;
        workers = 40;
      } );
  ]

(* Each system in its own simulation world. *)
let run_system ~object_size (mix : Workload.mix) d =
  Sim.run (fun () ->
      let setup = d.make () in
      Exp_common.preload setup ~nkeys:d.nkeys ~value_size:(object_size - Workload.key_size);
      sweep
        ~gen_of:(fun i ->
          Workload.generator ~object_size mix ~nkeys:d.nkeys (Rng.create (d.seed_base + i)))
        ~setup ~clients:d.workers ())

let run_workload ~object_size (mix : Workload.mix) =
  let results =
    List.map (fun (name, d) -> (name, run_system ~object_size mix d)) (descriptors ~object_size)
  in
  let points name = List.assoc name results in
  let leed = points "leed" and kvell = points "kvell" and fawn = points "fawn" in
  let fmt p = Printf.sprintf "%.0fK@%.2fms" (p.thr /. 1e3) p.avg_ms in
  let fmt100 p = Printf.sprintf "%.0fK@%.2fms" (p.thr /. 1e2) p.avg_ms in
  Leed_stats.Report.table
    ~title:(Printf.sprintf "%s (%dB): throughput@latency per offered-load step" mix.Workload.label object_size)
    ~columns:[ "load"; "FAWN(10)"; "FAWN(100)"; "Server-KVell"; "SmartNIC-LEED" ]
    (List.mapi
       (fun i frac ->
         [
           Printf.sprintf "%.0f%%" (100. *. frac);
           fmt (List.nth fawn i);
           (* FAWN(100): the paper assumes ideal 10x linear scaling with no
              latency increase. *)
           fmt100 (List.nth fawn i);
           fmt (List.nth kvell i);
           fmt (List.nth leed i);
         ])
       fractions)

let run_size ~object_size =
  List.iter (run_workload ~object_size) (Workload.all_ycsb ());
  print_endline
    "paper (1KB): KVell peaks ~2.9x LEED's throughput; near saturation LEED's avg latency is ~28.5% lower than KVell, ~47.9% lower than FAWN(100)"

let run () = run_size ~object_size:1024
