(** Figures 6 and 14: average latency vs throughput for the six YCSB
    workloads across the four compared systems, every system driven
    through the backend-generic boundary. *)

val run_size : object_size:int -> unit
(** One full grid at the given object size (fig14 reuses this at 256 B). *)

val run : unit -> unit
