(* Figure 13 (appendix): the impact of compaction parallelism.

   (a) intra-parallelism: one store under constant overwrite pressure with
       S-way sub-compactions, S ∈ {1..32}; client throughput improves as
       sub-compactions parallelise the relocation I/O.
   (b) inter-parallelism: four partitions on one SSD, with at most N
       compactions co-scheduled concurrently, N ∈ {1..4}.

   Workloads follow the paper: WR-ONLY, MIX-50 (uniform 50/50), and
   MIX-50-Zip (Zipf 0.99). *)

open Leed_sim
open Leed_core
open Leed_platform
open Leed_workload
open Leed_blockdev

let nkeys = 1_500
let object_size = 1024

type wl = Wr_only | Mix50 | Mix50_zip

let wl_label = function Wr_only -> "WR-ONLY" | Mix50 -> "MIX-50" | Mix50_zip -> "MIX-50-Zip"

let pick_op wl rng zipf =
  let id = match wl with Mix50_zip -> Zipf.next_scrambled zipf | _ -> Rng.int rng nkeys in
  let read = match wl with Wr_only -> false | Mix50 | Mix50_zip -> Rng.bool rng in
  (id, read)

(* One store squeezed into logs small enough that compaction runs
   continuously while clients overwrite. *)
let make_squeezed_store ~name ~dev ~base ~subcompactions ~prefetch =
  let vsize = object_size - Workload.key_size in
  let live_bytes = nkeys * (vsize + 40) in
  let klog_size = 768 * 1024 in
  let vlog_size = 3 * live_bytes in
  let klog = Circular_log.create ~name:(name ^ ".k") ~dev ~dev_id:0 ~base ~size:klog_size in
  let vlog =
    Circular_log.create ~name:(name ^ ".v") ~dev ~dev_id:0 ~base:(base + klog_size) ~size:vlog_size
  in
  let config =
    {
      Store.default_config with
      Store.nsegments = 256;
      subcompactions;
      prefetch;
      compaction_window = 96 * 1024;
      compact_trigger = 0.7;
      compact_target = 0.5;
    }
  in
  (Store.create ~config ~name ~klog ~vlog (), base + klog_size + vlog_size)

let run_clients ~store ~wl ~duration ~workers ~charge =
  ignore charge;
  let vsize = object_size - Workload.key_size in
  let rng = Rng.create 71 in
  let zipf = Zipf.create ~theta:0.99 ~n:nkeys (Rng.create 72) in
  let n = ref 0 in
  let t0 = Sim.now () in
  let stop = t0 +. duration in
  let worker () =
    while not (Sim.reached stop) do
      let id, read = pick_op wl rng zipf in
      let k = Workload.key_of_id id in
      if read then ignore (Store.get store k)
      else Store.put store k (Workload.value_for ~id ~version:1 ~size:vsize);
      incr n
    done
  in
  Sim.fork_join (List.init workers (fun _ () -> worker ()));
  float_of_int !n /. (Sim.now () -. t0)

(* --- (a) intra-parallelism --- *)

let intra_point ~wl ~subcompactions =
  Sim.run (fun () ->
      let platform = Exp_common.leed_platform () in
      let dev = Blockdev.create ~rng:(Rng.create 5) platform.Platform.ssd in
      let core = Platform.Cpu.pinned_core platform 0 in
      let store, _ = make_squeezed_store ~name:"s" ~dev ~base:0 ~subcompactions ~prefetch:true in
      Store.set_charge store (fun cycles -> Platform.Cpu.execute_on platform core ~cycles);
      Store.run_compactor ~period:0.001 store;
      let vsize = object_size - Workload.key_size in
      for id = 0 to nkeys - 1 do
        Store.put store (Workload.key_of_id id) (Workload.value_for ~id ~version:0 ~size:vsize)
      done;
      run_clients ~store ~wl ~duration:0.2 ~workers:48 ~charge:())

(* --- (b) inter-parallelism: 4 partitions, at most N concurrent
   compactions --- *)

let inter_point ~wl ~concurrent =
  Sim.run (fun () ->
      let platform = Exp_common.leed_platform () in
      let dev = Blockdev.create ~rng:(Rng.create 6) platform.Platform.ssd in
      let core = Platform.Cpu.pinned_core platform 0 in
      let gate = Sim.Resource.create ~name:"compaction-gate" ~capacity:concurrent () in
      let stores =
        List.init 4 (fun i ->
            let store, _ =
              make_squeezed_store
                ~name:(Printf.sprintf "p%d" i)
                ~dev
                ~base:(i * 16 * 1024 * 1024)
                ~subcompactions:4 ~prefetch:true
            in
            Store.set_charge store (fun cycles -> Platform.Cpu.execute_on platform core ~cycles);
            store)
      in
      (* Custom compaction drivers gated by the co-scheduling limit. *)
      List.iter
        (fun store ->
          Sim.every ~period:0.001 (fun () ->
              (if Circular_log.occupancy (Store.klog store) > 0.6 then
                 Sim.Resource.with_ gate (fun () -> ignore (Store.compact_key_log store)));
              (if Circular_log.occupancy (Store.vlog store) > 0.6 then
                 Sim.Resource.with_ gate (fun () -> ignore (Store.compact_value_log store)));
              true))
        stores;
      let vsize = object_size - Workload.key_size in
      List.iteri
        (fun _i store ->
          for id = 0 to nkeys - 1 do
            Store.put store (Workload.key_of_id id) (Workload.value_for ~id ~version:0 ~size:vsize)
          done)
        stores;
      (* Clients spread across the 4 partitions. *)
      let rng = Rng.create 73 in
      let zipf = Zipf.create ~theta:0.99 ~n:nkeys (Rng.create 74) in
      let n = ref 0 in
      let t0 = Sim.now () in
      let stop = t0 +. 0.2 in
      let worker w () =
        let store = List.nth stores (w mod 4) in
        while not (Sim.reached stop) do
          let id, read = pick_op wl rng zipf in
          let k = Workload.key_of_id id in
          if read then ignore (Store.get store k)
          else Store.put store k (Workload.value_for ~id ~version:1 ~size:vsize);
          incr n
        done
      in
      Sim.fork_join (List.init 48 (fun w () -> worker w ()));
      float_of_int !n /. (Sim.now () -. t0))

let run () =
  let wls = [ Wr_only; Mix50; Mix50_zip ] in
  let subs = [ 1; 2; 4; 8; 16; 32 ] in
  Leed_stats.Report.series ~title:"Figure 13a: intra-parallelism (client KQPS vs sub-compactions)"
    ~x_label:"subcompactions"
    ~xs:(List.map string_of_int subs)
    (List.map
       (fun wl -> (wl_label wl, List.map (fun s -> intra_point ~wl ~subcompactions:s /. 1e3) subs))
       wls);
  let cos = [ 1; 2; 3; 4 ] in
  Leed_stats.Report.series
    ~title:"Figure 13b: inter-parallelism (client KQPS vs co-scheduled compactions)"
    ~x_label:"compaction#"
    ~xs:(List.map string_of_int cos)
    (List.map
       (fun wl -> (wl_label wl, List.map (fun c -> inter_point ~wl ~concurrent:c /. 1e3) cos))
       wls);
  print_endline "paper: ~1.9x from 8 sub-compactions; +17.9% from co-scheduling"
