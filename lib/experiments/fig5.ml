(* Figure 5: energy efficiency (K queries per Joule) of the three
   persistent KV systems — Embedded-FAWN (10 Pi nodes, 42 W),
   Server-KVell (3 Xeon JBOFs, 756 W), SmartNIC-LEED (3 Stingray JBOFs,
   157.5 W) — across the six YCSB workloads, for 256 B and 1 KB objects.
   Replication factor 3 everywhere; saturated closed-loop throughput
   divided by the paper's measured wall power.

   All three systems run through the backend-generic boundary: the only
   per-system facts here are display name, sizing, and saturation knobs. *)

open Leed_sim
open Leed_core
open Leed_workload

(* Per-system sizing: key count, closed-loop worker count at saturation,
   and the measurement window (slow systems need longer windows for the
   same statistical weight). *)
type system_run = {
  display : string;
  setup : Exp_common.setup;
  nkeys : int;
  workers : int;
  window : float;
  seed : int;
}

let systems () =
  [
    {
      display = "Embedded-FAWN";
      setup = Exp_common.make_fawn ~nnodes:10 ~nclients:6 ();
      nkeys = 2_000;
      workers = 40;
      window = 1.0;
      seed = 23;
    };
    {
      (* KVell's batched workers need deep client concurrency to reach
         their (much higher) saturation point. *)
      display = "Server-KVell";
      setup = Exp_common.make_kvell ~nclients:6 ~object_size:1024 ();
      nkeys = 8_000;
      workers = 640;
      window = 0.1;
      seed = 22;
    };
    {
      display = "SmartNIC-LEED";
      setup = Exp_common.make_leed ~nclients:6 ();
      nkeys = 8_000;
      workers = 192;
      window = 0.12;
      seed = 21;
    };
  ]

let run_size ~object_size =
  Sim.run (fun () ->
      let systems = systems () in
      List.iter
        (fun s -> Exp_common.preload s.setup ~nkeys:s.nkeys ~value_size:(1024 - Workload.key_size))
        systems;
      let mixes = Workload.all_ycsb () in
      let rows =
        List.map
          (fun sys ->
            ( sys.display,
              List.map
                (fun mix ->
                  let gen =
                    Workload.generator ~object_size mix ~nkeys:sys.nkeys (Rng.create sys.seed)
                  in
                  let m =
                    Exp_common.measure_closed ~label:mix.Workload.label ~setup:sys.setup
                      ~clients:sys.workers ~duration:(Exp_common.dur sys.window) ~gen ()
                  in
                  m.Backend.queries_per_joule /. 1e3)
                mixes ))
          systems
      in
      Leed_stats.Report.series
        ~title:
          (Printf.sprintf "Figure 5 (%dB): energy efficiency (KQueries/Joule)" object_size)
        ~x_label:"workload"
        ~xs:(List.map (fun m -> m.Workload.label) mixes)
        rows;
      (* headline ratios *)
      let avg r = List.fold_left ( +. ) 0. r /. float_of_int (List.length r) in
      match rows with
      | [ (_, fawn); (_, kvell); (_, leed) ] ->
          Printf.printf "avg LEED/KVell = %.1fx (paper %s), LEED/FAWN = %.1fx (paper %s)\n"
            (avg leed /. avg kvell)
            (if object_size = 256 then "4.2x" else "3.8x")
            (avg leed /. avg fawn)
            (if object_size = 256 then "17.5x" else "19.1x")
      | _ -> ())

let run () =
  run_size ~object_size:256;
  run_size ~object_size:1024
