(* Figure 7: CRRS (chain replication with request shipping) handles read
   imbalance. YCSB-B and YCSB-C with Zipf skew swept; with CRRS any clean
   replica serves reads (the client picks the one advertising the most
   tokens), without it the tail alone does. Throughput, average and
   99.9th-percentile latency. *)

open Leed_sim
open Leed_core
open Leed_workload

let skews = [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95; 0.99 ]
let nkeys = 5_000

let measure_point ~crrs ~mix_of ~skew =
  Sim.run (fun () ->
      let setup = Exp_common.make_leed ~nclients:6 ~crrs () in
      Exp_common.preload setup ~nkeys ~value_size:1008;
      let gen = Workload.generator ~object_size:1024 (mix_of ~theta:skew) ~nkeys (Rng.create 51) in
      Exp_common.measure_closed ~label:"pt" ~setup ~clients:128 ~duration:(Exp_common.dur 0.12)
        ~gen ())

let run_mix name mix_of =
  let points crrs = List.map (fun skew -> measure_point ~crrs ~mix_of ~skew) skews in
  let with_crrs = points true and without = points false in
  let col f pts = List.map f pts in
  Leed_stats.Report.series
    ~title:(Printf.sprintf "Figure 7 (%s): CRRS vs no-CRRS over Zipf skew" name)
    ~x_label:"skew"
    ~xs:(List.map string_of_float skews)
    [
      ("thr-KQPS w/", col (fun m -> m.Backend.throughput /. 1e3) with_crrs);
      ("thr-KQPS w/o", col (fun m -> m.Backend.throughput /. 1e3) without);
      ("avg-ms w/", col (fun m -> m.Backend.avg_lat *. 1e3) with_crrs);
      ("avg-ms w/o", col (fun m -> m.Backend.avg_lat *. 1e3) without);
      ("p999-ms w/", col (fun m -> m.Backend.p999 *. 1e3) with_crrs);
      ("p999-ms w/o", col (fun m -> m.Backend.p999 *. 1e3) without);
    ]

let run () =
  run_mix "YCSB-B" (fun ~theta -> Workload.ycsb_b ~theta ());
  run_mix "YCSB-C" (fun ~theta -> Workload.ycsb_c ~theta ());
  print_endline
    "paper (YCSB-C): at skew 0.9/0.95/0.99 CRRS improves throughput 7.3x/5.1x/4.2x and cuts avg latency 86.6%/80.8%/76.4%"
