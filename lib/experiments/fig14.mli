(** Figure 14 (appendix): the Figure 6 grid at 256 B objects. *)

val run : unit -> unit
