(** Table 1: data store node comparison among embedded, server JBOF, and
    SmartNIC JBOF — skewness, computing density, balls-into-bins load. *)

val run : unit -> unit
