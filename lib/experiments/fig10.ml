(* Figure 10: the intra-JBOF data swapping mechanism under write
   imbalance. Write-only Zipf workload on a single JBOF, skew swept;
   higher skew concentrates PUTs on one SSD, and swapping redirects the
   burst to unloaded co-located drives. Throughput, average and
   99.9th-percentile latency, swap on vs off, 256 B and 1 KB objects.

   Scaling note: with the paper's 1.6 B keys, Zipf-0.99 makes whole *SSDs*
   hot while no single key exceeds ~1% of traffic. A scaled-down keyspace
   would instead bottleneck on one key's segment lock, which is not the
   mechanism under test — so the skew is applied at partition granularity
   (Zipf over partitions, uniform keys within), reproducing the same
   SSD-level imbalance the testbed saw. *)

open Leed_sim
open Leed_core
open Leed_workload

let skews = [ 0.1; 0.3; 0.5; 0.7; 0.9; 0.95; 0.99 ]
let nkeys = 4_000

let measure_point ~swap ~object_size ~skew =
  Sim.run (fun () ->
      let platform = Exp_common.leed_platform () in
      let cfg = Exp_common.engine_config ~swap ~swap_threshold:16 () in
      let e = Engine.create ~config:cfg platform in
      Engine.start e;
      let vsize = object_size - Workload.key_size in
      let npart = Engine.npartitions e in
      let pid_of key = Codec.hash_key key mod npart in
      Sim.fork_join
        (List.init 16 (fun w () ->
             let lo = w * nkeys / 16 and hi = ((w + 1) * nkeys / 16) - 1 in
             for id = lo to hi do
               let k = Workload.key_of_id id in
               ignore
                 (Engine.submit e ~pid:(pid_of k)
                    (Engine.Put (k, Workload.value_for ~id ~version:0 ~size:vsize)))
             done));
      (* Partition the keyspace by home partition once, then sample:
         partition ~ Zipf(skew), key uniform within it. *)
      let by_part = Array.make npart [] in
      for id = 0 to nkeys - 1 do
        let k = Workload.key_of_id id in
        by_part.(pid_of k) <- id :: by_part.(pid_of k)
      done;
      let by_part = Array.map Array.of_list by_part in
      let zipf = Zipf.create ~theta:skew ~n:npart (Rng.create 81) in
      let rng = Rng.create 82 in
      let lat = Leed_stats.Histogram.create () in
      let n = ref 0 in
      let t0 = Sim.now () in
      let stop = t0 +. Exp_common.dur 0.12 in
      let worker () =
        while not (Sim.reached stop) do
          let part = by_part.(Zipf.next zipf) in
          let id = part.(Rng.int rng (Array.length part)) in
          let k = Workload.key_of_id id in
          let s0 = Sim.now () in
          (match
             Engine.submit e ~pid:(pid_of k)
               (Engine.Put (k, Workload.value_for ~id ~version:1 ~size:vsize))
           with
          | _ -> ()
          | exception Engine.Overloaded _ -> Sim.delay (Sim.us 200.));
          Leed_stats.Histogram.record lat (Sim.now () -. s0);
          incr n
        done
      in
      Sim.fork_join (List.init 128 (fun _ () -> worker ()));
      let thr = float_of_int !n /. (Sim.now () -. t0) in
      let swaps =
        Array.fold_left (fun acc s -> acc + (Engine.ssd_stats s).Engine.swapped_out) 0 (Engine.ssds e)
      in
      (thr, Leed_stats.Histogram.mean lat, Leed_stats.Histogram.percentile lat 0.999, swaps))

let run_size ~object_size =
  let points swap = List.map (fun skew -> measure_point ~swap ~object_size ~skew) skews in
  let with_ds = points true and without = points false in
  let col f pts = List.map f pts in
  Leed_stats.Report.series
    ~title:(Printf.sprintf "Figure 10 (%dB): data swapping on/off under write-only Zipf" object_size)
    ~x_label:"skew"
    ~xs:(List.map string_of_float skews)
    [
      ("thr-KQPS w/DS", col (fun (t, _, _, _) -> t /. 1e3) with_ds);
      ("thr-KQPS w/oDS", col (fun (t, _, _, _) -> t /. 1e3) without);
      ("avg-ms w/DS", col (fun (_, a, _, _) -> a *. 1e3) with_ds);
      ("avg-ms w/oDS", col (fun (_, a, _, _) -> a *. 1e3) without);
      ("p999-ms w/DS", col (fun (_, _, p, _) -> p *. 1e3) with_ds);
      ("p999-ms w/oDS", col (fun (_, _, p, _) -> p *. 1e3) without);
      ("swaps", col (fun (_, _, _, s) -> float_of_int s) with_ds);
    ]

let run () =
  run_size ~object_size:256;
  run_size ~object_size:1024;
  print_endline
    "paper: at skew 0.99 swapping adds 15.4%/17.2% throughput (256B/1KB); avg/p99.9 latency improve 28.6%/32.1% across skewed cases"
