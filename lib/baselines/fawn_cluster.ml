(* FAWN-KV cluster: an array of wimpy embedded nodes (Raspberry Pi 3B+
   class) behind front-ends, with consistent hashing and *classic* chain
   replication — writes enter the head and propagate, reads are served by
   the tail only (no request shipping, no token flow control). This is the
   Embedded-FAWN comparison system of §4.3/§4.4, packaged behind the
   backend-generic service boundary (Leed_core.Backend.S). *)

open Leed_sim
open Leed_netsim
module Rpc = Netsim.Rpc
open Leed_platform
open Leed_core
open Leed_blockdev

type request =
  | FGet of { vn : Ring.vnode; key : string }
  | FWrite of { vn : Ring.vnode; key : string; value : bytes option; hop : int }

type response = FValue of bytes option | FOk | FErr

let request_size = function
  | FGet { key; _ } -> 48 + String.length key
  | FWrite { key; value; _ } ->
      48 + String.length key + (match value with Some v -> Bytes.length v | None -> 0)

let response_size = function FValue (Some v) -> 48 + Bytes.length v | FValue None | FOk | FErr -> 48

type config = {
  r : int;
  nnodes : int;
  dram_for_index : int; (* bounds each node's 6 B/object hash index *)
}

let default_config = { r = 3; nnodes = 10; dram_for_index = 16 * 1024 * 1024 }

type node = {
  id : int;
  store : Fawn_store.t;
  dev : Blockdev.t;
  rpc : (request, response) Rpc.t;
  cpu : Sim.Resource.t;
  platform : Platform.t;
}

type t = {
  r : int;
  platform : Platform.t;
  ring : Ring.t;
  nodes : node array;
  fabric : (request, response) Rpc.wire Netsim.fabric;
  mutable next_client_id : int;
  mutable client_nacks : int; (* client-observed errors/timeouts *)
  mutable corrupt_reads : int; (* ops that hit a rotted entry (FErr, not a crash) *)
}

let name = "fawn"

let store_of t id = t.nodes.(id).store

let node_handler t (n : node) req =
  (* Network + request dispatch cycles on the embedded CPU. *)
  Platform.Cpu.execute_on n.platform n.cpu ~cycles:8000.;
  match req with
  | FGet { key; _ } -> (
      Platform.Cpu.execute_on n.platform n.cpu ~cycles:6000.;
      match Fawn_store.get n.store key with
      | v -> FValue v
      | exception (Fawn_store.Corrupt _ | Invalid_argument _) ->
          (* A rotted entry fails this one op with an error response; it
             must never tear down the node's RPC server. *)
          t.corrupt_reads <- t.corrupt_reads + 1;
          FErr
      | exception _ -> FErr)
  | FWrite { key; value; hop; vn = _ } -> (
      Platform.Cpu.execute_on n.platform n.cpu ~cycles:6000.;
      let apply () =
        match value with
        | Some v -> Fawn_store.put n.store key v
        | None -> Fawn_store.del n.store key
      in
      match apply () with
      | () ->
          (* Propagate down the chain. *)
          let chain = Ring.chain t.ring ~r:t.r key in
          if hop >= List.length chain - 1 then FOk
          else begin
            match List.nth_opt chain (hop + 1) with
            | None -> FOk
            | Some next ->
                let req =
                  FWrite { vn = next.Ring.owner; key; value; hop = hop + 1 }
                in
                let resp =
                  Rpc.call_timeout n.rpc
                    ~dst:t.nodes.(next.Ring.owner.Ring.node).rpc
                    ~size:(request_size req) ~timeout:1.0 req
                in
                (match resp with Some FOk -> FOk | _ -> FErr)
          end
      | exception Fawn_store.Index_full -> FErr
      | exception (Fawn_store.Corrupt _ | Invalid_argument _) ->
          t.corrupt_reads <- t.corrupt_reads + 1;
          FErr)

let create ?(config = default_config) () =
  let platform = Platform.embedded_node in
  let fabric = Netsim.fabric ~base_latency_us:30.0 () in
  let ring = Ring.create () in
  let nodes =
    Array.init config.nnodes (fun id ->
        let dev = Blockdev.create ~rng:(Rng.create (77 + id)) platform.Platform.ssd in
        let log =
          Circular_log.create ~name:(Printf.sprintf "fawn%d.log" id) ~dev ~dev_id:0 ~base:0
            ~size:(Blockdev.capacity dev)
        in
        let store =
          Fawn_store.create
            ~config:{ Fawn_store.default_config with Fawn_store.dram_budget = config.dram_for_index }
            ~log ()
        in
        Fawn_store.run_flusher store;
        Fawn_store.run_compactor store;
        {
          id;
          store;
          dev;
          rpc = Rpc.create fabric ~name:(Printf.sprintf "pi%d" id) ~gbps:platform.Platform.nic_gbps;
          cpu = Sim.Resource.create ~name:(Printf.sprintf "pi%d.cpu" id) ~capacity:platform.Platform.cpu.Platform.cores ();
          platform;
        })
  in
  Array.iter
    (fun n ->
      let e = Ring.add ring { Ring.node = n.id; vidx = 0 } in
      e.Ring.vstate <- Ring.Running)
    nodes;
  let t =
    {
      r = min config.r config.nnodes;
      platform;
      ring;
      nodes;
      fabric;
      next_client_id = 0;
      client_nacks = 0;
      corrupt_reads = 0;
    }
  in
  Array.iter (fun n -> Rpc.serve n.rpc ~resp_size:response_size (fun _ ~src:_ req -> node_handler t n req)) nodes;
  t

(* The flusher/compactor processes poll cooperatively and quiesce with
   the simulation; there is nothing to tear down. *)
let start _ = ()
let stop _ = ()

(* Front-end client: forwards to the head (writes) or the tail (reads). *)
type client = { cluster : t; rpc : (request, response) Rpc.t }

let client t =
  let rpc = Rpc.create t.fabric ~name:(Printf.sprintf "fawn-fe%d" t.next_client_id) ~gbps:1.0 in
  t.next_client_id <- t.next_client_id + 1;
  Rpc.client rpc;
  { cluster = t; rpc }

let get c key =
  let t = c.cluster in
  match List.rev (Ring.chain t.ring ~r:t.r key) with
  | [] -> None
  | tail :: _ -> (
      let req = FGet { vn = tail.Ring.owner; key } in
      match
        Rpc.call_timeout c.rpc ~dst:t.nodes.(tail.Ring.owner.Ring.node).rpc ~size:(request_size req)
          ~timeout:1.0 req
      with
      | Some (FValue v) -> v
      | Some FOk | Some FErr | None ->
          t.client_nacks <- t.client_nacks + 1;
          None)

let write c key value =
  let t = c.cluster in
  match Ring.chain t.ring ~r:t.r key with
  | [] -> ()
  | head :: _ -> (
      let req = FWrite { vn = head.Ring.owner; key; value; hop = 0 } in
      match
        Rpc.call_timeout c.rpc ~dst:t.nodes.(head.Ring.owner.Ring.node).rpc ~size:(request_size req)
          ~timeout:1.0 req
      with
      | Some FOk -> ()
      | Some (FValue _) | Some FErr | None -> t.client_nacks <- t.client_nacks + 1)

let put c key value = write c key (Some value)
let del c key = write c key None

let execute c (op : Leed_workload.Workload.op) =
  match op with
  | Leed_workload.Workload.Read key -> ignore (get c key)
  | Leed_workload.Workload.Update (key, v) | Leed_workload.Workload.Insert (key, v) ->
      put c key v
  | Leed_workload.Workload.Read_modify_write (key, v) ->
      ignore (get c key);
      put c key v

let total_objects t = Array.fold_left (fun acc n -> acc + Fawn_store.objects n.store) 0 t.nodes

let counters t =
  let nvme_reads = ref 0 and nvme_writes = ref 0 in
  let busy = ref 0. in
  Array.iter
    (fun n ->
      let s = Blockdev.stats n.dev in
      nvme_reads := !nvme_reads + s.Blockdev.n_reads;
      nvme_writes := !nvme_writes + s.Blockdev.n_writes;
      busy := !busy +. Blockdev.busy_seconds n.dev)
    t.nodes;
  let ndevs = Array.length t.nodes in
  {
    Backend.nvme_reads = !nvme_reads;
    nvme_writes = !nvme_writes;
    device_busy = (if ndevs > 0 then !busy /. float_of_int ndevs else 0.);
    nacks = t.client_nacks;
    retries = 0; (* classic FAWN front-ends do not retry *)
    backoff_time = 0.;
    (* static membership: no join/leave/failure machinery modeled *)
    joins = 0;
    leaves = 0;
    failures_handled = 0;
    (* single-replica stores: corruption nacks the op; no repair path *)
    corrupt_reads =
      (t.corrupt_reads
      + Array.fold_left
          (fun acc n -> acc + (Fawn_store.counters n.store).Fawn_store.c_corrupt)
          0 t.nodes);
    read_repairs = 0;
    scrubbed_segments = 0;
    scrub_repairs = 0;
    (* no hedging / deadline / gray-failure machinery in the baseline *)
    hedges = 0;
    hedge_wins = 0;
    sheds = 0;
    slow_events = 0;
    quorum_rounds = 0;
    writebacks = 0;
    lin_checked_keys = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidations = 0;
    cache_sprays = 0;
    cache_hot_keys = 0;
  }

let watts t ~util =
  float_of_int (Array.length t.nodes) *. Platform.wall_power t.platform ~util
