(** KVell [SOSP'19] — the server-JBOF baseline: a shared-nothing,
    unordered-on-disk persistent KV store with batched asynchronous I/O.

    Each worker owns a slab slice of the flash and keeps a B-tree index,
    a free list, and a page cache in DRAM (~64 B per object — the Table 3
    capacity cap). Commands are enqueued to their worker; the worker walks
    the B-tree for each batch entry sequentially on its pinned core and
    issues the device I/O asynchronously behind a bounded window. Every
    command costs at most one SSD access; the CPU-heavy index is why KVell
    collapses on the wimpy SmartNIC while topping throughput on a Xeon. *)

exception Dram_full
(** The DRAM index budget is exhausted (Table 3 row 1). *)

exception Corrupt of string
(** A slot failed validation after an at-rest bit flip; fails the single
    op ({!get} raises), never the worker loop. *)

type config = {
  nworkers : int;
  slot_size : int;              (** slab item class *)
  dram_budget : int;
  index_bytes_per_object : int; (** ~64 B *)
  index_cycles : float;         (** per-op B-tree walk, A72-equivalent *)
  page_cache_frac : float;
  batch_size : int;             (** per-worker in-flight I/O window *)
  charge : int -> float -> unit; (** worker id -> cycles -> () *)
}

val default_config : config

type t

val create : ?config:config -> devs:Leed_blockdev.Blockdev.t array -> unit -> t
(** Workers split the devices' space evenly; worker i uses device
    [i mod ndev]. *)

val start : t -> unit
(** Spawn the worker loops (implicit on first command). *)

val objects : t -> int
val max_objects : t -> int
val index_bytes : t -> int
val addressable_fraction : t -> object_size:int -> flash_bytes:int -> float

val put : t -> string -> bytes -> unit
(** In-place update, or slot allocation for a new key; raises
    {!Dram_full} beyond the index budget. *)

val get : t -> string -> bytes option
val del : t -> string -> unit

val corrupt_reads : t -> int
(** Slots that failed validation on read. *)

val avg_batch : t -> float
(** Mean worker batch size over the run. *)

type cache_stats = { hits : int; misses : int }

val cache_stats : t -> cache_stats
