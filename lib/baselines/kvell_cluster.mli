(** KVell over server JBOFs, clustered: KVell itself is single-node, so
    the paper's R=3 comparison deployment replicates on the client side —
    a write goes to the R nodes owning the key, a read to the primary.
    Each node runs the shared-nothing KVell store over its full SSD array
    with workers pinned to Xeon cores. The Server-KVell comparison system
    of the paper's §4.3/§4.4.

    Implements {!Leed_core.Backend.S}: client-observed errors and
    timeouts count as [nacks]; the client-side replication scheme has no
    retry loop, so [retries] stays zero. *)

type config = {
  r : int;
  nnodes : int;
  platform : Leed_platform.Platform.t;
  store_config : Kvell_store.config;
}

include Leed_core.Backend.S with type config := config
