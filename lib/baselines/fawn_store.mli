(** FAWN-DS [SOSP'09] — the log-structured datastore of the embedded
    baseline, over the simulated block devices.

    One append-only circular data log holds (key, value) entries; a DRAM
    hash index maps each key to its newest offset at the paper's budget of
    6 bytes per object — which caps FAWN-JBOF at a sliver of the flash
    when ported to a SmartNIC JBOF (Table 3). GET = one SSD access; PUT
    goes through a write-behind buffer (or write-through when
    [flush_threshold] ≤ 0, the SPDK-port behaviour); DEL appends a
    tombstone; compaction reclaims dead entries. *)

exception Index_full
(** The DRAM budget is exhausted: FAWN cannot index more objects. *)

exception Corrupt of string

type config = {
  index_bytes_per_object : int; (** the paper's 6 B *)
  dram_budget : int;
  flush_threshold : int;
      (** write-behind buffer size; ≤ 0 selects synchronous write-through *)
  compact_trigger : float;
  compact_target : float;
  compaction_window : int;
  charge : float -> unit; (** CPU-cycle hook *)
}

val default_config : config

type t

val create : ?config:config -> log:Leed_core.Circular_log.t -> unit -> t

val objects : t -> int
val max_objects : t -> int
val index_bytes : t -> int
val log : t -> Leed_core.Circular_log.t

val addressable_fraction : t -> object_size:int -> float
(** Fraction of the flash this store can actually index (Table 3 row 1). *)

val put : t -> string -> bytes -> unit
(** Raises {!Index_full} for a new key beyond the DRAM budget. *)

val del : t -> string -> unit
val get : t -> string -> bytes option

val flush : t -> unit
(** Force the write-behind buffer to flash as one sequential write. *)

val run_flusher : ?period:float -> t -> unit
val compact : t -> int
val run_compactor : ?period:float -> t -> unit

type counters = {
  c_reads : int;
  c_writes : int;
  c_compactions : int;
  c_corrupt : int;  (** rotted entries the compactor stalled on *)
}

val counters : t -> counters
