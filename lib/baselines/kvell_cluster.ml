(* KVell over server JBOFs, clustered: KVell itself is single-node, so the
   comparison deployment (§4.3, replication factor 3) replicates on the
   client side — a write goes to the R nodes owning the key, a read to the
   primary. Each node runs the shared-nothing KVell store over its full
   SSD array with workers pinned to Xeon cores. Packaged behind the
   backend-generic service boundary (Leed_core.Backend.S). *)

open Leed_sim
open Leed_netsim
module Rpc = Netsim.Rpc
open Leed_platform
open Leed_core
open Leed_blockdev

type request = KGet of string | KPut of string * bytes | KDel of string

type response = KValue of bytes option | KOk | KErr

let request_size = function
  | KGet key -> 48 + String.length key
  | KPut (key, v) -> 48 + String.length key + Bytes.length v
  | KDel key -> 48 + String.length key

let response_size = function KValue (Some v) -> 48 + Bytes.length v | KValue None | KOk | KErr -> 48

type config = {
  r : int;
  nnodes : int;
  platform : Platform.t;
  store_config : Kvell_store.config;
}

let default_config =
  { r = 3; nnodes = 3; platform = Platform.server_jbof; store_config = Kvell_store.default_config }

type node = {
  id : int;
  store : Kvell_store.t;
  devs : Blockdev.t array;
  rpc : (request, response) Rpc.t;
  cores : Sim.Resource.t array; (* shared-nothing: one core per worker *)
  platform : Platform.t;
}

type t = {
  r : int;
  platform : Platform.t;
  nodes : node array;
  fabric : (request, response) Rpc.wire Netsim.fabric;
  mutable next_client_id : int;
  mutable client_nacks : int; (* client-observed errors/timeouts *)
}

let name = "kvell"

let node_handler (n : node) req =
  match req with
  | KGet key -> (
      match Kvell_store.get n.store key with
      | v -> KValue v
      | exception Kvell_store.Corrupt _ ->
          (* a rotted slot fails this one op with an error response; the
             store counts it *)
          KErr
      | exception _ -> KErr)
  | KPut (key, v) -> (
      match Kvell_store.put n.store key v with
      | () -> KOk
      | exception Kvell_store.Dram_full -> KErr)
  | KDel key -> (
      match Kvell_store.del n.store key with () -> KOk | exception _ -> KErr)

let create ?(config = default_config) () =
  let platform = config.platform in
  let fabric = Netsim.fabric ~base_latency_us:3.0 () in
  let nodes =
    Array.init config.nnodes (fun id ->
        let devs =
          Array.init platform.Platform.ssd_count (fun d ->
              Blockdev.create ~rng:(Rng.create ((id * 100) + d)) platform.Platform.ssd)
        in
        let nworkers =
          min config.store_config.Kvell_store.nworkers platform.Platform.cpu.Platform.cores
        in
        let cores = Array.init nworkers (fun w -> Platform.Cpu.pinned_core platform w) in
        let store_config =
          {
            config.store_config with
            Kvell_store.nworkers;
            charge =
              (fun wid cycles -> Platform.Cpu.execute_on platform cores.(wid mod nworkers) ~cycles);
          }
        in
        {
          id;
          store = Kvell_store.create ~config:store_config ~devs ();
          devs;
          rpc = Rpc.create fabric ~name:(Printf.sprintf "kvell%d" id) ~gbps:platform.Platform.nic_gbps;
          cores;
          platform;
        })
  in
  let t =
    {
      r = min config.r config.nnodes;
      platform;
      nodes;
      fabric;
      next_client_id = 0;
      client_nacks = 0;
    }
  in
  Array.iter
    (fun n -> Rpc.serve n.rpc ~resp_size:response_size (fun _ ~src:_ req -> node_handler n req))
    t.nodes;
  t

(* KVell workers poll cooperatively and quiesce with the simulation;
   there is nothing to tear down. *)
let start _ = ()
let stop _ = ()

(* Replica set of a key: R consecutive nodes starting at hash(key). *)
let replicas t key =
  let n = Array.length t.nodes in
  let start = Codec.hash_key key mod n in
  List.init t.r (fun i -> t.nodes.((start + i) mod n))

type client = { cluster : t; rpc : (request, response) Rpc.t }

let client t =
  let rpc = Rpc.create t.fabric ~name:(Printf.sprintf "kvell-cli%d" t.next_client_id) ~gbps:100.0 in
  t.next_client_id <- t.next_client_id + 1;
  Rpc.client rpc;
  { cluster = t; rpc }

let get c key =
  match replicas c.cluster key with
  | [] -> None
  | primary :: _ -> (
      let req = KGet key in
      match Rpc.call_timeout c.rpc ~dst:primary.rpc ~size:(request_size req) ~timeout:1.0 req with
      | Some (KValue v) -> v
      | Some KOk | Some KErr | None ->
          c.cluster.client_nacks <- c.cluster.client_nacks + 1;
          None)

let put c key value =
  let results =
    List.map
      (fun (n : node) () ->
        let req = KPut (key, value) in
        match Rpc.call_timeout c.rpc ~dst:n.rpc ~size:(request_size req) ~timeout:1.0 req with
        | Some KOk -> ()
        | Some (KValue _) | Some KErr | None ->
            c.cluster.client_nacks <- c.cluster.client_nacks + 1)
      (replicas c.cluster key)
  in
  Sim.fork_join results

let del c key =
  List.iter
    (fun (n : node) ->
      let req = KDel key in
      match Rpc.call_timeout c.rpc ~dst:n.rpc ~size:(request_size req) ~timeout:1.0 req with
      | Some KOk -> ()
      | Some (KValue _) | Some KErr | None ->
          c.cluster.client_nacks <- c.cluster.client_nacks + 1)
    (replicas c.cluster key)

let execute c (op : Leed_workload.Workload.op) =
  match op with
  | Leed_workload.Workload.Read key -> ignore (get c key)
  | Leed_workload.Workload.Update (key, v) | Leed_workload.Workload.Insert (key, v) -> put c key v
  | Leed_workload.Workload.Read_modify_write (key, v) ->
      ignore (get c key);
      put c key v

let total_objects t = Array.fold_left (fun acc n -> acc + Kvell_store.objects n.store) 0 t.nodes

let counters t =
  let nvme_reads = ref 0 and nvme_writes = ref 0 in
  let busy = ref 0. and ndevs = ref 0 in
  Array.iter
    (fun n ->
      Array.iter
        (fun dev ->
          let s = Blockdev.stats dev in
          nvme_reads := !nvme_reads + s.Blockdev.n_reads;
          nvme_writes := !nvme_writes + s.Blockdev.n_writes;
          busy := !busy +. Blockdev.busy_seconds dev;
          incr ndevs)
        n.devs)
    t.nodes;
  {
    Backend.nvme_reads = !nvme_reads;
    nvme_writes = !nvme_writes;
    device_busy = (if !ndevs > 0 then !busy /. float_of_int !ndevs else 0.);
    nacks = t.client_nacks;
    retries = 0; (* client-side replication: no retry loop *)
    backoff_time = 0.;
    (* static membership: no join/leave/failure machinery modeled *)
    joins = 0;
    leaves = 0;
    failures_handled = 0;
    (* single-replica stores: corruption nacks the op; no repair path *)
    corrupt_reads =
      Array.fold_left (fun acc n -> acc + Kvell_store.corrupt_reads n.store) 0 t.nodes;
    read_repairs = 0;
    scrubbed_segments = 0;
    scrub_repairs = 0;
    (* no hedging / deadline / gray-failure machinery in the baseline *)
    hedges = 0;
    hedge_wins = 0;
    sheds = 0;
    slow_events = 0;
    quorum_rounds = 0;
    writebacks = 0;
    lin_checked_keys = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_invalidations = 0;
    cache_sprays = 0;
    cache_hot_keys = 0;
  }

let watts t ~util =
  float_of_int (Array.length t.nodes) *. Platform.wall_power t.platform ~util
