(** FAWN-KV cluster: an array of wimpy embedded nodes (Raspberry Pi 3B+
    class) behind front-ends, with consistent hashing and *classic* chain
    replication — writes enter the head and propagate, reads are served by
    the tail only (no request shipping, no token flow control). The
    Embedded-FAWN comparison system of the paper's §4.3/§4.4.

    Implements {!Leed_core.Backend.S}: [create] builds and starts
    [nnodes] Pi-class back-ends (FAWN-DS each, buffered log writes,
    background flusher + compactor) on a 1 GbE fabric; reads are served
    by the key's chain tail, writes propagate head → tail. Client-observed
    errors and timeouts count as [nacks]; the front-ends never retry. *)

type config = {
  r : int;
  nnodes : int;
  dram_for_index : int;  (** bounds each node's 6 B/object hash index *)
}

include Leed_core.Backend.S with type config := config

val store_of : t -> int -> Fawn_store.t
