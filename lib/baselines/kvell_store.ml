(* KVell [SOSP'19] — the server-JBOF baseline: a shared-nothing,
   unordered-on-disk persistent KV store with batched asynchronous I/O.

   Each worker owns a slice of the flash and, in DRAM: a B-tree index
   (key → slot), a free list of slots, and a page cache. Items live in
   fixed-size slots of a slab ("no ordering on disk"); updates are
   in-place (random writes — no log, no compaction, no sorting).

   Execution follows KVell's architecture: every command is enqueued to
   its worker; the worker loop drains a batch, walks the B-tree for each
   command *sequentially on its pinned core*, then issues the batch's
   device I/O asynchronously and completes the commands. Batching is what
   maxes out SSD bandwidth — and what inflates latency under load, the
   effect Table 3 shows on the wimpy SmartNIC cores. DRAM cost is ~64 B
   per object, which caps the addressable capacity (Table 3 row 1). *)

open Leed_sim
open Leed_blockdev

exception Dram_full
(* The in-memory index/page-cache budget is exhausted (Table 3 row 1). *)

exception Corrupt of string
(* A slot failed validation after an at-rest bit flip. *)

type config = {
  nworkers : int;
  slot_size : int;         (* slab item class *)
  dram_budget : int;       (* total for index + cache across workers *)
  index_bytes_per_object : int; (* ~64 B: B-tree entry + free list + cache meta *)
  index_cycles : float;    (* per-op B-tree walk cost, A72-equivalent *)
  page_cache_frac : float; (* share of DRAM for the page cache *)
  batch_size : int;        (* device-access batching factor *)
  charge : int -> float -> unit; (* worker -> cycles -> () *)
}

let default_config =
  {
    nworkers = 4;
    slot_size = 1024;
    dram_budget = 512 * 1024 * 1024;
    index_bytes_per_object = 64;
    index_cycles = 60_000.;
    page_cache_frac = 0.25;
    batch_size = 64;
    charge = (fun _ _ -> ());
  }

type op = OGet of string | OPut of string * bytes | ODel of string

type outcome = Found of bytes | Missing | Done | Full | Corrupted

type pending = { op : op; completion : outcome Sim.Ivar.t }

type worker = {
  wid : int;
  dev : Blockdev.t;
  base : int;
  nslots : int;
  btree : int Btree.t; (* key -> slot index *)
  free_list : int Queue.t;
  mutable next_slot : int;
  inbox : pending Sim.Mailbox.t;
  io_window : Sim.Resource.t; (* bounds the worker's in-flight device I/O *)
  (* page cache: slot -> bytes, FIFO-evicted at capacity *)
  cache : (int, bytes) Hashtbl.t;
  cache_order : int Queue.t;
  cache_capacity : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type t = {
  config : config;
  workers : worker array;
  max_objects : int;
  mutable objects : int;
  mutable reads : int;
  mutable writes : int;
  mutable running : bool;
  mutable batches : int;
  mutable batched_ops : int;
  mutable corrupt : int; (* slots that failed validation on read *)
}

(* Workers split the given devices' usable space evenly. *)
let create ?(config = default_config) ~devs () =
  let ndev = Array.length devs in
  if ndev = 0 then invalid_arg "Kvell_store.create: need at least one device";
  let per_worker_cache =
    int_of_float (config.page_cache_frac *. float_of_int config.dram_budget)
    / config.nworkers / config.slot_size
  in
  let workers =
    Array.init config.nworkers (fun wid ->
        let dev = devs.(wid mod ndev) in
        let share = Blockdev.capacity dev / ((config.nworkers + ndev - 1) / ndev) in
        let base = wid / ndev * share in
        {
          wid;
          dev;
          base;
          nslots = share / config.slot_size;
          btree = Btree.create ~entry_bytes:config.index_bytes_per_object ~dummy:0 ();
          free_list = Queue.create ();
          next_slot = 0;
          inbox = Sim.Mailbox.create ();
          io_window =
            Sim.Resource.create
              ~name:(Printf.sprintf "kvell.w%d.io" wid)
              ~capacity:config.batch_size ();
          cache = Hashtbl.create 1024;
          cache_order = Queue.create ();
          cache_capacity = max 16 per_worker_cache;
          cache_hits = 0;
          cache_misses = 0;
        })
  in
  let index_budget =
    int_of_float ((1. -. config.page_cache_frac) *. float_of_int config.dram_budget)
  in
  {
    config;
    workers;
    max_objects = index_budget / config.index_bytes_per_object;
    objects = 0;
    reads = 0;
    writes = 0;
    running = false;
    batches = 0;
    batched_ops = 0;
    corrupt = 0;
  }

let objects t = t.objects
let max_objects t = t.max_objects

let index_bytes t =
  Array.fold_left (fun acc w -> acc + Btree.modeled_bytes w.btree) 0 t.workers

let addressable_fraction t ~object_size ~flash_bytes =
  Float.min 1.0 (float_of_int (t.max_objects * object_size) /. float_of_int flash_bytes)

let worker_of_key t key = t.workers.(Leed_core.Codec.hash_key key mod t.config.nworkers)

let cache_put w slot data =
  if not (Hashtbl.mem w.cache slot) then begin
    Hashtbl.replace w.cache slot data;
    Queue.push slot w.cache_order;
    while Hashtbl.length w.cache > w.cache_capacity do
      let victim = Queue.pop w.cache_order in
      Hashtbl.remove w.cache victim
    done
  end
  else Hashtbl.replace w.cache slot data

let encode_slot key value slot_size =
  let out = Bytes.make slot_size '\000' in
  Bytes.set_uint8 out 0 (String.length key);
  Bytes.set_int32_le out 1 (Int32.of_int (Bytes.length value));
  Bytes.blit_string key 0 out 8 (String.length key);
  Bytes.blit value 0 out (8 + String.length key) (Bytes.length value);
  out

let decode_slot buf =
  let klen = Bytes.get_uint8 buf 0 in
  let vlen = Int32.to_int (Bytes.get_int32_le buf 1) in
  if vlen < 0 || 8 + klen + vlen > Bytes.length buf then
    raise (Corrupt "kvell: rotted slot header");
  let key = Bytes.sub_string buf 8 klen in
  let value = Bytes.sub buf (8 + klen) vlen in
  (key, value)

let alloc_slot w =
  match Queue.take_opt w.free_list with
  | Some s -> s
  | None ->
      if w.next_slot >= w.nslots then failwith "kvell: slab full";
      let s = w.next_slot in
      w.next_slot <- s + 1;
      s

(* --- the worker loop: index phase (sequential CPU) then device phase
   (asynchronous batch) --- *)

(* Device action decided during the index phase. *)
type action =
  | Read_slot of int * pending
  | Write_slot of int * bytes * pending
  | Complete of outcome * pending

let index_phase t w pend =
  t.config.charge w.wid t.config.index_cycles;
  match pend.op with
  | OGet key -> (
      match Btree.find w.btree key with
      | None -> Complete (Missing, pend)
      | Some slot -> (
          t.reads <- t.reads + 1;
          match Hashtbl.find_opt w.cache slot with
          | Some d -> (
              w.cache_hits <- w.cache_hits + 1;
              match decode_slot d with
              | k, v when String.equal k key -> Complete (Found v, pend)
              | _ | (exception (Corrupt _ | Invalid_argument _)) ->
                  (* A rotted slot fails this one op; drop it from the
                     cache so it is not served again. *)
                  t.corrupt <- t.corrupt + 1;
                  Hashtbl.remove w.cache slot;
                  Complete (Corrupted, pend))
          | None ->
              w.cache_misses <- w.cache_misses + 1;
              Read_slot (slot, pend)))
  | OPut (key, value) -> (
      if String.length key + Bytes.length value + 8 > t.config.slot_size then
        invalid_arg "Kvell_store: item exceeds slot size";
      match Btree.find w.btree key with
      | Some slot ->
          t.writes <- t.writes + 1;
          Write_slot (slot, encode_slot key value t.config.slot_size, pend)
      | None ->
          if t.objects >= t.max_objects then Complete (Full, pend)
          else begin
            let slot = alloc_slot w in
            Btree.insert w.btree key slot;
            t.objects <- t.objects + 1;
            t.writes <- t.writes + 1;
            Write_slot (slot, encode_slot key value t.config.slot_size, pend)
          end)
  | ODel key -> (
      match Btree.find w.btree key with
      | None -> Complete (Done, pend)
      | Some slot ->
          ignore (Btree.delete w.btree key);
          Queue.push slot w.free_list;
          Hashtbl.remove w.cache slot;
          t.objects <- t.objects - 1;
          t.writes <- t.writes + 1;
          (* persist the freed slot header *)
          Write_slot (slot, Bytes.make t.config.slot_size '\000', pend))

let device_phase t w action () =
  match action with
  | Complete (outcome, pend) -> Sim.Ivar.fill pend.completion outcome
  | Read_slot (slot, pend) -> (
      let d = Blockdev.read w.dev ~off:(w.base + (slot * t.config.slot_size)) ~len:t.config.slot_size in
      let key = match pend.op with OGet k | OPut (k, _) | ODel k -> k in
      match decode_slot d with
      | k, v when String.equal k key ->
          cache_put w slot d;
          Sim.Ivar.fill pend.completion (Found v)
      | _ | (exception (Corrupt _ | Invalid_argument _)) ->
          (* Complete the single command as Corrupted: the exception must
             never escape this spawned I/O process (it would leave the
             submitter blocked on the ivar forever and kill the run). *)
          t.corrupt <- t.corrupt + 1;
          Sim.Ivar.fill pend.completion Corrupted)
  | Write_slot (slot, data, pend) ->
      Blockdev.write_rand w.dev ~off:(w.base + (slot * t.config.slot_size)) data;
      cache_put w slot data;
      Sim.Ivar.fill pend.completion Done

let worker_loop t w =
  while t.running do
    let first = Sim.Mailbox.recv w.inbox in
    let batch = ref [ first ] in
    let n = ref 1 in
    let continue = ref true in
    while !n < t.config.batch_size && !continue do
      match Sim.Mailbox.try_recv w.inbox with
      | Some p ->
          batch := p :: !batch;
          incr n
      | None -> continue := false
    done;
    let batch = List.rev !batch in
    t.batches <- t.batches + 1;
    t.batched_ops <- t.batched_ops + List.length batch;
    (* Index phase: sequential on this worker's core. *)
    let actions = List.map (fun p -> index_phase t w p) batch in
    (* Device phase: asynchronous — the worker keeps indexing the next
       batch while up to [batch_size] of its I/Os are in flight (KVell's
       io_uring-style submission; the window is the paper's queue depth). *)
    List.iter
      (fun a ->
        match a with
        | Complete _ -> device_phase t w a ()
        | Read_slot _ | Write_slot _ ->
            Sim.Resource.acquire w.io_window;
            Sim.spawn (fun () ->
                device_phase t w a ();
                Sim.Resource.release w.io_window))
      actions
  done

let start t =
  if not t.running then begin
    t.running <- true;
    Array.iter (fun w -> Sim.spawn (fun () -> worker_loop t w)) t.workers
  end

let submit t op =
  if not t.running then start t;
  let key = match op with OGet k | OPut (k, _) | ODel k -> k in
  let w = worker_of_key t key in
  let pend = { op; completion = Sim.Ivar.create () } in
  Sim.Mailbox.send w.inbox pend;
  Sim.Ivar.read pend.completion

let get t key =
  match submit t (OGet key) with
  | Found v -> Some v
  | Missing | Done -> None
  | Full -> raise Dram_full
  | Corrupted -> raise (Corrupt "kvell: rotted slot")

let put t key value =
  match submit t (OPut (key, value)) with
  | Full -> raise Dram_full
  | Found _ | Missing | Done | Corrupted -> ()

let del t key = ignore (submit t (ODel key))

let corrupt_reads t = t.corrupt

let avg_batch t = if t.batches = 0 then 0. else float_of_int t.batched_ops /. float_of_int t.batches

type cache_stats = { hits : int; misses : int }

let cache_stats t =
  Array.fold_left
    (fun acc w -> { hits = acc.hits + w.cache_hits; misses = acc.misses + w.cache_misses })
    { hits = 0; misses = 0 } t.workers
