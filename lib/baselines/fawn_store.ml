(* FAWN-DS [SOSP'09] — the log-structured datastore of the embedded
   baseline, reimplemented over the simulated block devices.

   One append-only (circular, compacted) data log holds (key, value)
   entries; a DRAM hash index maps each key to its newest log offset. The
   paper's budget is 6 bytes of DRAM per object (15-bit key fragment +
   valid bit + 4-byte pointer) — which is exactly what caps FAWN-JBOF at
   7.7%/24.1% of the flash when ported to a SmartNIC JBOF (Table 3).

   GET = one SSD access. PUT goes through a write-behind buffer and a
   periodic group flush, so log-structured writes run *faster* than reads
   (Fig. 12's FAWN curve). DEL appends a tombstone. *)

open Leed_sim
open Leed_core

exception Index_full
(* DRAM budget exhausted: FAWN cannot index more objects (Table 3). *)

type config = {
  index_bytes_per_object : int; (* the paper's 6 B *)
  dram_budget : int;            (* bytes available for the hash index *)
  flush_threshold : int;        (* write-behind buffer size *)
  compact_trigger : float;
  compact_target : float;
  compaction_window : int;
  charge : float -> unit;       (* CPU-cycle hook *)
}

let default_config =
  {
    index_bytes_per_object = 6;
    dram_budget = 64 * 1024 * 1024;
    flush_threshold = 64 * 1024;
    compact_trigger = 0.85;
    compact_target = 0.6;
    compaction_window = 256 * 1024;
    charge = (fun _ -> ());
  }

(* Log entry framing: magic(1) klen(1) vlen(4) pad(2) key value.
   vlen = 0 marks a tombstone. *)
let entry_header = 8
let entry_magic = 0xFA

type t = {
  config : config;
  log : Circular_log.t;
  index : (string, int) Hashtbl.t; (* key -> logical offset of newest entry *)
  mutable objects : int;
  max_objects : int;
  (* write-behind: reserved-but-unflushed entries, oldest first *)
  buffer : (int * bytes) Queue.t;
  staged : (int, bytes) Hashtbl.t; (* loff -> entry bytes, pre-flush *)
  mutable buffer_bytes : int;
  mutable reads : int;
  mutable writes : int;
  mutable compactions : int;
  mutable corrupt : int; (* rotted entries the compactor stalled on *)
}

let create ?(config = default_config) ~log () =
  {
    config;
    log;
    index = Hashtbl.create 4096;
    objects = 0;
    max_objects = config.dram_budget / config.index_bytes_per_object;
    buffer = Queue.create ();
    staged = Hashtbl.create 256;
    buffer_bytes = 0;
    reads = 0;
    writes = 0;
    compactions = 0;
    corrupt = 0;
  }

let objects t = t.objects
let max_objects t = t.max_objects
let index_bytes t = t.objects * t.config.index_bytes_per_object
let log t = t.log

(* Fraction of the flash this store can actually index (Table 3 row 1). *)
let addressable_fraction t ~object_size =
  let flash = float_of_int (Circular_log.size t.log) in
  let indexed = float_of_int (t.max_objects * object_size) in
  Float.min 1.0 (indexed /. flash)

let encode_entry key value =
  let klen = String.length key and vlen = Bytes.length value in
  let out = Bytes.create (entry_header + klen + vlen) in
  Bytes.set_uint8 out 0 entry_magic;
  Bytes.set_uint8 out 1 klen;
  Bytes.set_int32_le out 2 (Int32.of_int vlen);
  Bytes.set_uint16_le out 6 0;
  Bytes.blit_string key 0 out entry_header klen;
  Bytes.blit value 0 out (entry_header + klen) vlen;
  out

exception Corrupt of string

let decode_entry ?(off = 0) buf =
  if Bytes.get_uint8 buf off <> entry_magic then raise (Corrupt "fawn: bad entry magic");
  let klen = Bytes.get_uint8 buf (off + 1) in
  let vlen = Int32.to_int (Bytes.get_int32_le buf (off + 2)) in
  let key = Bytes.sub_string buf (off + entry_header) klen in
  let value = Bytes.sub buf (off + entry_header + klen) vlen in
  (key, value, entry_header + klen + vlen)

(* Group-flush the write-behind buffer as one big sequential write. *)
let flush t =
  if not (Queue.is_empty t.buffer) then begin
    let entries = List.of_seq (Queue.to_seq t.buffer) in
    Queue.clear t.buffer;
    t.buffer_bytes <- 0;
    let first_off = fst (List.hd entries) in
    let total = List.fold_left (fun acc (_, d) -> acc + Bytes.length d) 0 entries in
    let blob = Bytes.create total in
    let pos = ref 0 in
    List.iter
      (fun (_, d) ->
        Bytes.blit d 0 blob !pos (Bytes.length d);
        pos := !pos + Bytes.length d)
      entries;
    Circular_log.write_reserved t.log ~loff:first_off blob;
    List.iter (fun (loff, _) -> Hashtbl.remove t.staged loff) entries
  end

let run_flusher ?(period = 0.002) t = Sim.every ~period (fun () -> flush t; true)

let append_entry t data =
  (if Circular_log.free t.log < Bytes.length data then begin
     (* No room: force-flush and let the compactor (caller-driven) catch
        up; block briefly like the LEED store does. *)
     flush t;
     let tries = ref 0 in
     while Circular_log.free t.log < Bytes.length data do
       incr tries;
       if !tries > 50_000 then failwith "fawn: log permanently full";
       Sim.delay (Sim.us 500.)
     done
   end);
  let loff = Circular_log.reserve t.log (Bytes.length data) in
  Queue.push (loff, data) t.buffer;
  Hashtbl.replace t.staged loff data;
  t.buffer_bytes <- t.buffer_bytes + Bytes.length data;
  (* flush_threshold <= 0 selects synchronous write-through, the behaviour
     of the SPDK port on the JBOF (Table 3's 45-61 us write latency);
     a positive threshold selects the write-behind batching of the
     OS-buffered embedded deployment. *)
  if t.buffer_bytes >= t.config.flush_threshold then flush t;
  loff

let put t key value =
  t.config.charge 3000.;
  if (not (Hashtbl.mem t.index key)) && t.objects >= t.max_objects then raise Index_full;
  let loff = append_entry t (encode_entry key value) in
  if not (Hashtbl.mem t.index key) then t.objects <- t.objects + 1;
  Hashtbl.replace t.index key loff;
  t.writes <- t.writes + 1

let del t key =
  t.config.charge 2500.;
  if Hashtbl.mem t.index key then begin
    Hashtbl.remove t.index key;
    t.objects <- t.objects - 1;
    ignore (append_entry t (encode_entry key Bytes.empty))
  end

(* Read the entry at [loff]: first a fixed-size block (header + small
   entry), then the remainder when the entry is larger — at most two
   accesses, typically one, like the real implementation. *)
let read_entry t loff =
  let first = min 4096 (Circular_log.tail t.log - loff) in
  let buf = Circular_log.read t.log ~loff ~len:first in
  let klen = Bytes.get_uint8 buf 1 in
  let vlen = Int32.to_int (Bytes.get_int32_le buf 2) in
  let total = entry_header + klen + vlen in
  if total <= first then decode_entry buf
  else decode_entry (Circular_log.read t.log ~loff ~len:total)

let get t key =
  t.config.charge 3500.;
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some loff -> (
      t.reads <- t.reads + 1;
      match Hashtbl.find_opt t.staged loff with
      | Some data ->
          (* Still in the write-behind buffer: DRAM hit. *)
          let _, v, _ = decode_entry data in
          Some v
      | None ->
          let k, v, _ = read_entry t loff in
          if not (String.equal k key) then
            raise (Corrupt (Printf.sprintf "fawn: index pointed %s at entry %s" key k));
          Some v)

(* Log compaction: relocate entries still referenced by the index, skip
   dead ones, advance the head. *)
let compact t =
  flush t;
  let head = Circular_log.head t.log in
  let stop = min (Circular_log.committed_tail t.log) (head + t.config.compaction_window) in
  let loff = ref head in
  let rotted = ref false in
  while (not !rotted) && !loff < stop do
    match read_entry t !loff with
    | exception (Corrupt _ | Invalid_argument _) ->
        (* A rotted frame: its length field is untrustworthy, so the scan
           cannot step over it. Stop the round — the head never advances
           past rot, so the single op fails, not the whole store. *)
        t.corrupt <- t.corrupt + 1;
        rotted := true
    | key, value, len ->
        (match Hashtbl.find_opt t.index key with
        | Some o when o = !loff && Bytes.length value > 0 ->
            let new_off = append_entry t (encode_entry key value) in
            Hashtbl.replace t.index key new_off
        | _ -> ());
        loff := !loff + len
  done;
  flush t;
  let reclaimed = !loff - Circular_log.head t.log in
  if reclaimed > 0 then Circular_log.advance_head t.log reclaimed;
  t.compactions <- t.compactions + 1;
  reclaimed

let run_compactor ?(period = 0.01) t =
  Sim.every ~period (fun () ->
      let max_rounds = 2 + (Circular_log.size t.log / max 1 t.config.compaction_window) in
      if Circular_log.occupancy t.log > t.config.compact_trigger then begin
        let rounds = ref 0 in
        while
          Circular_log.occupancy t.log > t.config.compact_target
          && (not (Circular_log.is_empty t.log))
          && !rounds < max_rounds
        do
          incr rounds;
          ignore (compact t)
        done
      end;
      true)

type counters = { c_reads : int; c_writes : int; c_compactions : int; c_corrupt : int }

let counters t =
  { c_reads = t.reads; c_writes = t.writes; c_compactions = t.compactions; c_corrupt = t.corrupt }
