(** Discrete-event simulation engine.

    The simulator provides SimPy-style cooperative processes implemented
    with OCaml 5 effects: a process is any [unit -> unit] function that may
    call the blocking operations of this module ({!delay}, {!suspend}, the
    synchronisation primitives). Time is a [float] number of seconds.

    Determinism: events scheduled for the same instant fire in a
    deterministic order chosen by the run's {!tiebreak} policy (FIFO
    scheduling order by default), and all randomness in the wider
    simulator flows from seeded {!Rng.t} values, so a simulation is
    reproducible bit-for-bit. The determinism {e contract} this repo
    enforces is stronger than "same seed, same numbers": observables
    must also be invariant across every legal tie-break ordering of
    simultaneous events — that is what the simrace detector
    ([leed race]) checks by re-running workloads under perturbed
    policies. See DESIGN.md §11. *)

exception Deadlock of string
(** Raised by {!run} when no events remain but the main process has not
    finished — every remaining process is blocked forever. *)

exception Main_incomplete
(** Raised by {!run} when the [until] horizon was reached (or {!stop} was
    called) before the main process produced its result. *)

(** Ordering policy for events scheduled at the same instant.

    [Fifo] (the default) fires equal-time events in scheduling order.
    [Perturbed seed] orders them by a seeded stateless hash of each
    event's sequence number instead — a deterministic keyed shuffle
    exploring a different legal ordering; two runs with the same
    perturbation seed are still bit-identical. [Perturb_first] applies
    the perturbed key only to the first [limit] scheduled events and
    FIFO keys afterwards; the race detector bisects on [limit] to find
    the first event whose reordering changes the observables. *)
type tiebreak = Fifo | Perturbed of int | Perturb_first of { seed : int; limit : int }

(** Which event-scheduler data structure drives the run (see
    {!Scheduler}): [Binary_heap] is the O(log n) reference, [Calendar]
    a Brown '88 calendar queue, [Wheel] a hierarchical timing wheel
    with overflow heap. All three obey the same [(time, key, seq)]
    ordering contract exactly, so the dispatch sequence — and every
    race/chaos digest built on it — is bit-identical whichever one a
    run selects; only speed differs. *)
type sched = Scheduler.kind = Binary_heap | Calendar | Wheel

(** One executed scheduler event, as seen by [run]'s [?on_dispatch]
    hook: its virtual time, scheduling sequence number, and the label
    of the process (or timer context) that scheduled it. *)
type dispatch = { d_time : float; d_seq : int; d_label : string }

val run :
  ?until:float ->
  ?checks:bool ->
  ?tiebreak:tiebreak ->
  ?sched:sched ->
  ?on_dispatch:(dispatch -> unit) ->
  (unit -> 'a) ->
  'a
(** [run main] creates a fresh simulation clock at time 0, executes [main]
    as the root process and drives the event loop until [main]'s result is
    available and the event heap drains, [until] is reached, or {!stop} is
    called. Returns [main]'s result. Nested runs are permitted (the outer
    engine is restored on exit).

    [~checks:true] turns on the {!Invariant} runtime sanitizer for the
    duration of the run (event-time monotonicity, device queue bounds,
    token conservation, replication chain consistency); [~checks:false]
    forces it off. When omitted, the sanitizer state is inherited — off by
    default, on under [LEED_SANITIZE=1]. The previous state is restored
    when the run finishes.

    [~tiebreak] selects the equal-time event ordering policy (default
    {!Fifo}). [~sched] selects the scheduler data structure (default
    {!Binary_heap}); the choice never changes observable behaviour,
    only performance. [~on_dispatch] is called once per executed event,
    before it runs — the race detector's execution-log channel; leave it
    unset on hot paths (the per-event cost when unset is one branch). *)

val now : unit -> float
(** Current simulation time, in seconds. Must be called inside {!run}. *)

val delay : float -> unit
(** Block the calling process for the given number of seconds. *)

val spawn : ?label:string -> (unit -> unit) -> unit
(** Start a new process at the current instant. The caller keeps running
    until it blocks; the child runs once the caller yields. [label]
    names the process in race-attribution output and dispatch logs;
    when omitted the child inherits the spawner's label (no
    allocation). *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and hands [register] a
    single-shot [resume] closure. The process continues, with the value
    passed, at the simulation instant when [resume] is first called; later
    calls are ignored. This is the primitive from which all blocking
    synchronisation (and race-free timeouts) is built. *)

val after : float -> (unit -> unit) -> unit
(** [after t f] runs the non-blocking callback [f] in [t] seconds, without
    creating a process. Unlike {!delay}, usable from any context (including
    {!suspend} registration callbacks). *)

val yield : unit -> unit
(** Reschedule the calling process behind every event already queued for
    the current instant. *)

val stop : unit -> unit
(** Terminate the event loop after the current event completes. *)

(** {1 Scheduler introspection}

    Cheap counters over the running engine, read by the observability
    layer's periodic sampler ([Leed_core.Obs]). All must be called
    inside {!run}. *)

val events_dispatched : unit -> int
(** Number of heap events executed since the current run started. *)

val heap_depth : unit -> int
(** Number of events currently pending on the scheduler (the name
    predates pluggable schedulers; it is the pending-event count
    whichever structure the run selected). *)

val max_pending_events : unit -> int
(** High-water mark of {!heap_depth} since the current run started —
    the "max pending" column of the scale benchmark. *)

val processes_spawned : unit -> int
(** Number of processes started with {!spawn} since the run started. *)

val fork_join : (unit -> unit) list -> unit
(** Spawn every thunk and block until all have finished. *)

val fork_join_named : (string option * (unit -> unit)) list -> unit
(** {!fork_join} with an optional {!spawn} label per thunk, so workers
    are attributable in race-detection output. *)

val every : period:float -> (unit -> bool) -> unit
(** [every ~period f] spawns a process that calls [f] every [period]
    seconds until [f] returns [false]. *)

(** {1 Time helpers} *)

val us : float -> float
(** [us x] is [x] microseconds expressed in seconds. *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val to_us : float -> float
(** Convert seconds to microseconds (for reporting). *)

(** {1 Virtual-time comparisons}

    The only sanctioned way to compare the clock against a deadline or
    stored timestamp. The helpers are epsilon-free — the clock only
    takes values that were actually scheduled, so exact float
    comparison is sound — but centralising them keeps raw float
    comparisons on virtual time out of the wider codebase, where they
    tend to encode hidden assumptions about event ordering (simlint
    rule R7 rejects [Sim.now () = t] and friends outside lib/sim). *)

val reached : float -> bool
(** [reached t] is true once the clock is at or past [t]: the loop
    guard [while not (Sim.reached stop_at) do ... done] replaces
    [while Sim.now () < stop_at]. *)

val past : float -> bool
(** [past t] is true strictly after [t] (now > t). *)

val same_instant : float -> bool
(** [same_instant t] is true exactly at [t] (now = t). Legitimate uses
    are rare — an event firing at its own scheduled time — and worth a
    comment at the call site. *)

(** {1 Synchronisation} *)

(** Write-once variables. *)
module Ivar : sig
  type 'a t
  (** A variable that is filled at most once; readers block until then. *)

  val create : unit -> 'a t
  (** A fresh, empty variable. *)

  val fill : 'a t -> 'a -> unit
  (** Fill the variable and wake all readers. Raises [Invalid_argument] if
      already filled. *)

  val try_fill : 'a t -> 'a -> bool
  (** Like {!fill} but returns [false] instead of raising. *)

  val is_filled : 'a t -> bool
  (** Whether the variable has been filled. *)

  val peek : 'a t -> 'a option
  (** The value if already filled, without blocking. *)

  val on_fill : 'a t -> ('a -> unit) -> unit
  (** Register a callback run at fill time (immediately if already full). *)

  val read : 'a t -> 'a
  (** Block until filled. *)

  val read_timeout : 'a t -> float -> 'a option
  (** Block until filled or the timeout elapses, whichever happens first. *)
end

(** Unbounded FIFO channels with blocking receive. *)
module Mailbox : sig
  type 'a t
  (** A FIFO channel; sends never block, receives may. *)

  val create : unit -> 'a t
  (** A fresh, empty channel. *)

  val length : 'a t -> int
  (** Number of queued (sent but not yet received) values. *)

  val is_empty : 'a t -> bool
  (** Whether no values are queued. *)

  val send : 'a t -> 'a -> unit
  (** Never blocks: hands the value to the oldest waiting receiver, or
      queues it. *)

  val try_recv : 'a t -> 'a option
  (** The oldest queued value, or [None] without blocking. *)

  val recv : 'a t -> 'a
  (** Block until a value is available, then return the oldest. *)

  val recv_timeout : 'a t -> float -> 'a option
  (** [None] if nothing arrives within the timeout. *)
end

(** Counted resources with FIFO admission (SimPy's [Resource]): models
    cores, device queue slots, link capacity. *)
module Resource : sig
  type t
  (** A counted resource: up to [capacity] units held at once, FIFO
      admission for waiters. *)

  val create : ?name:string -> capacity:int -> unit -> t
  (** A fresh resource with the given (positive) capacity; [name] appears
      in error messages and sanitizer reports. *)

  val acquire : ?amount:int -> t -> unit
  (** Take [amount] units (default 1), blocking behind earlier waiters
      until they fit. Raises [Invalid_argument] if [amount] exceeds the
      total capacity. *)

  val release : ?amount:int -> t -> unit
  (** Return [amount] units (default 1) and wake fitting waiters in FIFO
      order. Raises [Invalid_argument] on over-release. *)

  val with_ : ?amount:int -> t -> (unit -> 'a) -> 'a
  (** Acquire, run, release (also on exception). *)

  val in_use : t -> int
  (** Units currently held. *)

  val waiting : t -> int
  (** Number of processes queued behind {!acquire}. *)

  val capacity : t -> int
  (** Total capacity the resource was created with. *)

  val utilisation : t -> float
  (** Time-averaged fraction of capacity in use since the run started. *)

  val busy_time : t -> float
  (** Cumulative busy integral in unit-seconds: the time integral of
      {!in_use} since the run started. Divide by elapsed time for mean
      occupancy; the energy model uses it to derive observed device
      activity. *)
end
