(** Discrete-event simulation engine.

    The simulator provides SimPy-style cooperative processes implemented
    with OCaml 5 effects: a process is any [unit -> unit] function that may
    call the blocking operations of this module ({!delay}, {!suspend}, the
    synchronisation primitives). Time is a [float] number of seconds.

    Determinism: events scheduled for the same instant fire in scheduling
    order, and all randomness in the wider simulator flows from seeded
    {!Rng.t} values, so a simulation is reproducible bit-for-bit. *)

exception Deadlock of string
(** Raised by {!run} when no events remain but the main process has not
    finished — every remaining process is blocked forever. *)

exception Main_incomplete
(** Raised by {!run} when the [until] horizon was reached (or {!stop} was
    called) before the main process produced its result. *)

val run : ?until:float -> ?checks:bool -> (unit -> 'a) -> 'a
(** [run main] creates a fresh simulation clock at time 0, executes [main]
    as the root process and drives the event loop until [main]'s result is
    available and the event heap drains, [until] is reached, or {!stop} is
    called. Returns [main]'s result. Nested runs are permitted (the outer
    engine is restored on exit).

    [~checks:true] turns on the {!Invariant} runtime sanitizer for the
    duration of the run (event-time monotonicity, device queue bounds,
    token conservation, replication chain consistency); [~checks:false]
    forces it off. When omitted, the sanitizer state is inherited — off by
    default, on under [LEED_SANITIZE=1]. The previous state is restored
    when the run finishes. *)

val now : unit -> float
(** Current simulation time, in seconds. Must be called inside {!run}. *)

val delay : float -> unit
(** Block the calling process for the given number of seconds. *)

val spawn : (unit -> unit) -> unit
(** Start a new process at the current instant. The caller keeps running
    until it blocks; the child runs once the caller yields. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] parks the calling process and hands [register] a
    single-shot [resume] closure. The process continues, with the value
    passed, at the simulation instant when [resume] is first called; later
    calls are ignored. This is the primitive from which all blocking
    synchronisation (and race-free timeouts) is built. *)

val after : float -> (unit -> unit) -> unit
(** [after t f] runs the non-blocking callback [f] in [t] seconds, without
    creating a process. Unlike {!delay}, usable from any context (including
    {!suspend} registration callbacks). *)

val yield : unit -> unit
(** Reschedule the calling process behind every event already queued for
    the current instant. *)

val stop : unit -> unit
(** Terminate the event loop after the current event completes. *)

val fork_join : (unit -> unit) list -> unit
(** Spawn every thunk and block until all have finished. *)

val every : period:float -> (unit -> bool) -> unit
(** [every ~period f] spawns a process that calls [f] every [period]
    seconds until [f] returns [false]. *)

(** {1 Time helpers} *)

val us : float -> float
(** [us x] is [x] microseconds expressed in seconds. *)

val ms : float -> float
(** [ms x] is [x] milliseconds expressed in seconds. *)

val to_us : float -> float
(** Convert seconds to microseconds (for reporting). *)

(** {1 Synchronisation} *)

(** Write-once variables. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Fill the variable and wake all readers. Raises [Invalid_argument] if
      already filled. *)

  val try_fill : 'a t -> 'a -> bool
  (** Like {!fill} but returns [false] instead of raising. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option

  val on_fill : 'a t -> ('a -> unit) -> unit
  (** Register a callback run at fill time (immediately if already full). *)

  val read : 'a t -> 'a
  (** Block until filled. *)

  val read_timeout : 'a t -> float -> 'a option
  (** Block until filled or the timeout elapses, whichever happens first. *)
end

(** Unbounded FIFO channels with blocking receive. *)
module Mailbox : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val send : 'a t -> 'a -> unit
  (** Never blocks: hands the value to the oldest waiting receiver, or
      queues it. *)

  val try_recv : 'a t -> 'a option
  val recv : 'a t -> 'a

  val recv_timeout : 'a t -> float -> 'a option
  (** [None] if nothing arrives within the timeout. *)
end

(** Counted resources with FIFO admission (SimPy's [Resource]): models
    cores, device queue slots, link capacity. *)
module Resource : sig
  type t

  val create : ?name:string -> capacity:int -> unit -> t
  val acquire : ?amount:int -> t -> unit
  val release : ?amount:int -> t -> unit

  val with_ : ?amount:int -> t -> (unit -> 'a) -> 'a
  (** Acquire, run, release (also on exception). *)

  val in_use : t -> int
  val waiting : t -> int
  val capacity : t -> int

  val utilisation : t -> float
  (** Time-averaged fraction of capacity in use since the run started. *)
end
