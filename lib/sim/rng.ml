(* Deterministic splittable PRNG (SplitMix64).

   Every stochastic component of the simulator draws from its own [t],
   split off a root seed, so adding a new random consumer never perturbs
   the streams seen by existing ones. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

(* Uniform in [0, 1). 53 significant bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value is a non-negative OCaml int; modulo bias is
     negligible for bound << 2^62 and the simulator does not need
     cryptographic quality. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

(* Exponential with the given mean; used for open-loop arrival processes. *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

(* Truncated normal via Box-Muller, clamped at [lo]; used for service-time
   jitter around a mean latency. *)
let normal t ~mean ~stddev =
  let u1 = max epsilon_float (float t) in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

(* Stateless keyed hashing: mix the inputs through the same SplitMix64
   finalizer the stream generator uses. Unlike drawing from a shared [t],
   a hash depends only on its inputs — never on how many other consumers
   drew first — so decisions keyed this way are robust to event
   reordering at equal simulation instants. *)

let mix2 k x = mix64 (Int64.add (Int64.mul golden (Int64.of_int x)) k)

let hash2 k x = Int64.to_int (Int64.shift_right_logical (mix2 (mix2 (Int64.of_int k) 0x5bd1e995) x) 2)

let hash_float k a b c =
  let z = mix2 (mix2 (mix2 (mix2 (Int64.of_int k) 0x2545f491) a) b) c in
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
