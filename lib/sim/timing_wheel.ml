(* Hierarchical timing wheel scheduler with an overflow heap.

   Geometry: a sorted intrusive "front" list holding every event at or
   before the current front edge, three wheel levels of [w = 32768]
   slots each (spans of w, w^2 and w^3 ticks), and an overflow heap for
   events beyond the w^3-tick horizon. With the default ~0.12 us tick
   the levels cover ~3.9 ms / ~128 s / ~48 days, so virtually all
   timers a cluster simulation arms land inside the wheel; only far
   stragglers wait in the overflow heap until the edge approaches.

   Adds are O(1): bucket the event by its distance from the front edge.
   Pops serve the front list; when it drains, [advance] walks the edge
   forward, migrating level-0 slots into the front list and cascading
   level-1/2 slots down exactly when the edge enters their region.
   The wide levels mean an event is re-bucketed at most twice before
   dispatch — and the common short timers of a steady-state storm
   (sub-level-0-span re-arms) go straight to level 0 and are touched
   cold exactly once. Every re-bucketing walk costs one cache miss per
   cell — the dominant cost at cluster scale, which is why fewer,
   wider levels beat a taller tower here. The tick is deliberately
   fine: per-tick occupancy bounds the sorted front-list insert walk,
   which is quadratic in events-per-tick, so at tens of millions of
   pending events a coarse tick turns the front list into the
   bottleneck long before slot-array footprint matters.

   The front is a list, not a heap, because comparisons dereference
   event cells (the time field of a mixed record is a boxed float): a
   sorted insert into a handful of just-migrated, cache-warm cells is
   cheaper than heap sifts, pop is a head unlink, and a tail pointer
   gives O(1) appends — the path taken by same-instant FIFO bursts
   (spawn / suspend wake-ups at [now]), whose seq-ordered keys always
   sort last.

   Determinism: dispatch order must be bit-identical to the binary
   heap's. The tick is a power of two, so [time / tick] is exact and
   every event has a well-defined integer tick index [a]; the front
   edge is an integer tick index, never an accumulated float. The
   invariants that make the order exact:

   - front holds exactly the events with [a <= edge]; any such event is
     strictly earlier in time than any wheel/overflow event (equal
     times share [a], hence always share a bucket);
   - the edge never passes an unmigrated event: scans advance slot by
     slot through occupied territory and only jump across slots proven
     empty, cascading each level-1/2 slot when the edge enters it;
   - each slot holds a single tick-index value at a time (level ranges
     are narrower than a wrap), so migrating a whole slot is exact;
   - within the front list, Sched_event.before gives the (time, key,
     seq) total order. *)

let lw = 15
let w = 1 lsl lw
let wmask = w - 1
let w2 = w * w
let w3 = w * w * w

type t = {
  inv_tick : float; (* 1 / tick; tick is a power of two *)
  mutable edge : int; (* front edge as an absolute tick index *)
  mutable front : Sched_event.t; (* sorted intrusive list; events with a <= edge *)
  mutable front_tail : Sched_event.t; (* last cell; stale when front is nil *)
  slots0 : Sched_event.t array; (* intrusive lists; a - edge in [1, w) *)
  slots1 : Sched_event.t array; (* a - edge in [w, w2) *)
  slots2 : Sched_event.t array; (* a - edge in [w2, w3) *)
  mutable c0 : int;
  mutable c1 : int;
  mutable c2 : int;
  overflow : Event_heap.t; (* a - edge >= w3 *)
  mutable count : int;
}

(* Tick index of a time: floor (time / tick), exact for power-of-two
   ticks. Times too far in the future for integer range clamp to a
   far index; they sit in the overflow heap (which orders by time
   exactly) until the clamp is irrelevant. *)
let tick_of t time =
  let q = time *. t.inv_tick in
  if q >= 4.0e18 then max_int / 2 else int_of_float q

let create ?(tick = 0x1p-23) () =
  {
    inv_tick = 1. /. tick;
    edge = 0;
    front = Sched_event.nil;
    front_tail = Sched_event.nil;
    slots0 = Array.make w Sched_event.nil;
    slots1 = Array.make w Sched_event.nil;
    slots2 = Array.make w Sched_event.nil;
    c0 = 0;
    c1 = 0;
    c2 = 0;
    overflow = Event_heap.create ~capacity:64 ();
    count = 0;
  }

let length t = t.count
let is_empty t = t.count = 0

(* Insertion point for [ev] in a sorted intrusive list after [prev].
   Top level with explicit arguments, not an inner closure: this is on
   the hot path and must not allocate. *)
let rec find_pos (prev : Sched_event.t) (ev : Sched_event.t) =
  let n = prev.Sched_event.next in
  if n != Sched_event.nil && Sched_event.before_bits n ev then find_pos n ev else prev

(* Sorted insert into the front list. Head and tail fast paths are
   O(1); the interior walk only runs for events landing strictly inside
   the list, which for a just-migrated slot is a handful of warm cells. *)
let front_add t (ev : Sched_event.t) =
  if t.front == Sched_event.nil then begin
    ev.Sched_event.next <- Sched_event.nil;
    t.front <- ev;
    t.front_tail <- ev
  end
  else if Sched_event.before_bits ev t.front then begin
    ev.Sched_event.next <- t.front;
    t.front <- ev
  end
  else if Sched_event.before_bits t.front_tail ev then begin
    ev.Sched_event.next <- Sched_event.nil;
    t.front_tail.Sched_event.next <- ev;
    t.front_tail <- ev
  end
  else begin
    let prev = find_pos t.front ev in
    ev.Sched_event.next <- prev.Sched_event.next;
    prev.Sched_event.next <- ev
  end

(* Bucket an event by its distance from the current edge, using the
   tick index cached in the cell by [add]. Shared by [add], cascades,
   and the overflow drain; does not touch [count]. Reading [ev.tick]
   instead of re-deriving it from the time matters on cascade walks:
   the cell is a cold cache line there, and the boxed time float would
   be a second one. *)
let place t (ev : Sched_event.t) =
  let a = ev.Sched_event.tick in
  if a <= t.edge then front_add t ev
  else begin
    let d = a - t.edge in
    if d < w then begin
      let idx = a land wmask in
      ev.next <- t.slots0.(idx);
      t.slots0.(idx) <- ev;
      t.c0 <- t.c0 + 1
    end
    else if d < w2 then begin
      let idx = (a asr lw) land wmask in
      ev.next <- t.slots1.(idx);
      t.slots1.(idx) <- ev;
      t.c1 <- t.c1 + 1
    end
    else if d < w3 then begin
      let idx = (a asr (2 * lw)) land wmask in
      ev.next <- t.slots2.(idx);
      t.slots2.(idx) <- ev;
      t.c2 <- t.c2 + 1
    end
    else Event_heap.add t.overflow ev
  end

let add t ev =
  ev.Sched_event.tick <- tick_of t ev.Sched_event.time;
  Sched_event.cache_time_bits ev;
  place t ev;
  t.count <- t.count + 1

(* Top-level tail-recursive walks with explicit arguments rather than
   [ref] cursors or inner closures throughout the advance path: both
   would allocate once per tick, and the whole point of this structure
   is an allocation-free steady state. *)
let rec migrate0_go t (cell : Sched_event.t) =
  if cell != Sched_event.nil then begin
    let next = cell.Sched_event.next in
    t.c0 <- t.c0 - 1;
    front_add t cell;
    migrate0_go t next
  end

(* Move the level-0 slot for tick index [a] (= the slot the edge just
   reached) into the front list. *)
let migrate0 t a =
  let idx = a land wmask in
  let head = t.slots0.(idx) in
  t.slots0.(idx) <- Sched_event.nil;
  migrate0_go t head

(* Re-place every event of a level-1/2 slot now that the edge has
   entered its region; they land in lower levels (or the front list). *)
let rec cascade1_go t (cell : Sched_event.t) =
  if cell != Sched_event.nil then begin
    let next = cell.Sched_event.next in
    t.c1 <- t.c1 - 1;
    place t cell;
    cascade1_go t next
  end

let cascade1 t b =
  let idx = b land wmask in
  let head = t.slots1.(idx) in
  t.slots1.(idx) <- Sched_event.nil;
  cascade1_go t head

let rec cascade2_go t (cell : Sched_event.t) =
  if cell != Sched_event.nil then begin
    let next = cell.Sched_event.next in
    t.c2 <- t.c2 - 1;
    place t cell;
    cascade2_go t next
  end

let cascade2 t c =
  let idx = c land wmask in
  let head = t.slots2.(idx) in
  t.slots2.(idx) <- Sched_event.nil;
  cascade2_go t head

(* Pull overflow events that have come within the wheel horizon. *)
let rec drain_overflow t =
  if
    (not (Event_heap.is_empty t.overflow))
    && tick_of t (Event_heap.peek_time t.overflow) - t.edge < w3
  then begin
    place t (Event_heap.pop t.overflow);
    drain_overflow t
  end

(* Advance the edge until the front list is populated (or no events
   remain). Each iteration either processes a region boundary (with its
   cascades), scans the current region's occupied level for the next
   nonempty slot, or jumps across a region proven empty. *)
(* First occupied slot of a level in [a, a_end], or -1. *)
let rec scan0 t a a_end =
  if a > a_end then -1
  else if t.slots0.(a land wmask) != Sched_event.nil then a
  else scan0 t (a + 1) a_end

let rec scan1 t b b_end =
  if b > b_end then -1
  else if t.slots1.(b land wmask) != Sched_event.nil then b
  else scan1 t (b + 1) b_end

let rec scan2 t c c_end =
  if c > c_end then -1
  else if t.slots2.(c land wmask) != Sched_event.nil then c
  else scan2 t (c + 1) c_end

let rec advance t =
  drain_overflow t;
  if t.front != Sched_event.nil || t.count = 0 then ()
  else begin
    (if t.c0 = 0 && t.c1 = 0 && t.c2 = 0 then
       (* Only far-future overflow remains: jump to just before its
          head; the next drain pulls it into the wheel. *)
       t.edge <- max t.edge (tick_of t (Event_heap.peek_time t.overflow) - 1)
     else
       let next = t.edge + 1 in
       if next land (w2 - 1) = 0 then begin
         (* Entering a new level-2 region: cascade its slot, then the
            first level-1 slot of the region, then take the first tick. *)
         t.edge <- next;
         cascade2 t (next asr (2 * lw));
         cascade1 t (next asr lw);
         migrate0 t next
       end
       else if next land (w - 1) = 0 then begin
         t.edge <- next;
         cascade1 t (next asr lw);
         migrate0 t next
       end
       else if t.c0 > 0 then begin
         (* Scan level 0 up to the end of the current level-1 region. *)
         let region_end = (((next asr lw) + 1) * w) - 1 in
         let a = scan0 t next region_end in
         if a >= 0 then begin
           t.edge <- a;
           migrate0 t a
         end
         else t.edge <- region_end (* boundary cascade on the next pass *)
       end
       else if t.c1 > 0 then begin
         (* Level 0 empty: scan level 1 within the current level-2
            region and jump to just before the first occupied slot. *)
         let cur_b = t.edge asr lw in
         let c_end = (((t.edge asr (2 * lw)) + 1) * w) - 1 in
         let b = scan1 t (cur_b + 1) c_end in
         if b >= 0 then t.edge <- (b * w) - 1
         else t.edge <- (((t.edge asr (2 * lw)) + 1) * w2) - 1
       end
       else begin
         (* Only level 2 occupied: jump to just before its first
            occupied slot (level-2 indices span at most one wrap). *)
         let cur_c = t.edge asr (2 * lw) in
         let c = scan2 t (cur_c + 1) (cur_c + w) in
         if c >= 0 then t.edge <- (c * w2) - 1
         else t.edge <- (((cur_c + w) * w2) - 1) (* unreachable if counts are consistent *)
       end);
    advance t
  end

(* Fused peek-and-pop: [Sched_event.nil] when empty or when the minimum
   lies beyond [limit]. The engine's hot loop uses this instead of
   peek-then-pop, avoiding a per-dispatch call and float boxing. *)
let pop_until t limit =
  if t.count = 0 then Sched_event.nil
  else begin
    if t.front == Sched_event.nil then advance t;
    let head = t.front in
    (* The box behind [head.time] was allocated at schedule time — a
       cold line by now; rebuild the identical float from the cached
       bits in the warm cell line instead of dereferencing it. *)
    Sched_event.refresh_time head;
    if head.Sched_event.time > limit then Sched_event.nil
    else begin
      t.front <- head.Sched_event.next;
      head.Sched_event.next <- Sched_event.nil;
      t.count <- t.count - 1;
      head
    end
  end

let pop t = pop_until t infinity

let peek_time t =
  if t.count = 0 then infinity
  else begin
    if t.front == Sched_event.nil then advance t;
    Sched_event.refresh_time t.front;
    t.front.Sched_event.time
  end
