(** Pluggable event scheduler for the DES engine.

    The SCHEDULER contract is the ordering law of module type {!S}:
    events come back in [(time, key, seq)] lexicographic order
    ({!Sched_event.before}), so every conforming implementation yields
    bit-identical dispatch sequences from the engine — the property
    that keeps race-detector digests and same-seed chaos runs stable
    no matter which scheduler a run selects ([Sim.run ?sched]). Three
    implementations ship: the reference binary heap, a calendar queue,
    and a hierarchical timing wheel. *)

module Event = Sched_event
(** The shared event-cell type all schedulers store. *)

(** The SCHEDULER contract. Implementations must return events in
    exactly [(time, key, seq)] lexicographic order ({!Sched_event.before}):
    earliest time first; among equal times the smallest tie-break key,
    then the smallest sequence number. No epsilon, no approximation —
    dispatch order across implementations must be bit-identical. *)
module type S = sig
  type t
  (** Scheduler state. *)

  val name : string
  (** Short identifier used by CLIs and benchmark output. *)

  val create : unit -> t
  (** A fresh, empty scheduler. *)

  val add : t -> Event.t -> unit
  (** Insert an event cell; the scheduler owns the cell until {!pop}
      returns it. *)

  val pop : t -> Event.t
  (** Remove and return the minimum event per the ordering contract;
      [Event.nil] (test with [==]) when empty. *)

  val pop_until : t -> float -> Event.t
  (** Pop the minimum event if its time is [<= limit]; [Event.nil] when
      empty or when the minimum lies beyond [limit]. Fused
      peek-then-pop so the engine's hot loop performs one call and no
      float boxing per dispatch. *)

  val peek_time : t -> float
  (** Time of the minimum event without removing it; [infinity] when
      empty. *)

  val length : t -> int
  (** Number of events currently queued. *)
end

(** Which implementation to use: [Binary_heap] is the O(log n)
    reference, [Calendar] the Brown '88 calendar queue, [Wheel] the
    hierarchical timing wheel with overflow heap (fastest at
    cluster-scale pending populations). *)
type kind = Binary_heap | Calendar | Wheel

type t
(** A scheduler instance (one per {!Sim.run}). *)

val create : kind -> t
(** Instantiate a fresh, empty scheduler of the given kind. *)

val kind : t -> kind
(** The kind this instance was created with. *)

val add : t -> Event.t -> unit
(** Insert an event cell (see {!S.add}). *)

val pop : t -> Event.t
(** Remove the minimum event; [Event.nil] when empty (see {!S.pop}). *)

val pop_until : t -> float -> Event.t
(** Pop the minimum event if its time is [<= limit]; [Event.nil]
    otherwise (see {!S.pop_until}). *)

val peek_time : t -> float
(** Time of the minimum event; [infinity] when empty (see
    {!S.peek_time}). *)

val length : t -> int
(** Number of events currently queued. *)

val name : kind -> string
(** Canonical CLI name: ["heap"], ["calendar"] or ["wheel"]. *)

val kinds : kind list
(** All implementations, reference first. *)

val names : string list
(** Canonical names of {!kinds}, for CLI help strings. *)

val of_name : string -> kind option
(** Parse a scheduler name (accepts the canonical names plus
    ["binary-heap"], ["calendar-queue"], ["timing-wheel"]). *)
