(* Shared mutable event cell for the pluggable event schedulers.

   Every scheduler implementation (binary heap, calendar queue, timing
   wheel) stores these cells; [Sim] recycles them through a freelist so
   the steady-state hot loop allocates nothing per event. The [next]
   field is an intrusive single-link used both by the freelist and by
   the bucket/slot lists inside the calendar queue and timing wheel —
   a cell is on at most one list at a time, so one link suffices. *)

(* Field order is deliberate: the fields a scheduler's sorted bucket
   walk touches ([thi]/[tlo]/[key]/[seq] for [before_bits] and the
   [next] link) sit in the cell's first cache line, while the
   dispatch-only fields ([label], [run]) trail at the end — a cold cell
   walked during a wheel migration or calendar insert costs one line,
   and the trailing fields are read only at dispatch, when the cell is
   already warm. *)
type t = {
  mutable time : float;
  mutable thi : int;
  mutable tlo : int;
      (* scheduler-private cache of the IEEE-754 bit pattern of the
         time, split hi/lo 32 (set via [cache_time_bits]). For
         nonnegative times, lexicographic comparison of (thi, tlo)
         equals float comparison of the times exactly, so schedulers
         can order cells without leaving the cell's own cache line. *)
  mutable key : int;
  mutable seq : int;
  mutable next : t; (* intrusive link; physically [nil] when unlinked *)
  mutable tick : int;
      (* scheduler-private cache of the event's integer bucket index
         (the timing wheel's tick, the calendar queue's virtual bucket):
         the time field is a boxed float in this mixed record, so
         re-deriving the bucket on a cold cell walk would cost a second
         cache miss per cell. *)
  mutable label : string;
  mutable run : unit -> unit;
}

(* Accessors for code outside the scheduler internals; the hot paths in
   lib/sim read the field directly. *)
let time ev = ev.time
let set_time ev t = ev.time <- t

let nop () = ()

(* Self-referencing sentinel: list ends and "no event" results are
   represented by physical equality with [nil], so the hot loop never
   allocates an option. Never mutated after creation. *)
(* simlint: allow toplevel-state *)
let rec nil =
  {
    time = neg_infinity;
    key = 0;
    seq = 0;
    label = "";
    run = nop;
    next = nil;
    tick = 0;
    thi = 0;
    tlo = 0;
  }

let make () =
  { time = 0.; key = 0; seq = 0; label = ""; run = nop; next = nil; tick = 0; thi = 0; tlo = 0 }

let before a b =
  a.time < b.time
  || (a.time = b.time && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))

(* Cache the bit pattern of [time] for [before_bits]. Simulation times
   are nonnegative (the clock starts at +0 and events never schedule
   into the past), for which the IEEE-754 bit pattern is monotonic in
   the float value, so integer comparison of the halves reproduces
   float comparison exactly — including distinguishing times one ulp
   apart. *)
let cache_time_bits ev =
  let b = Int64.bits_of_float ev.time in
  ev.thi <- Int64.to_int (Int64.shift_right_logical b 32);
  ev.tlo <- Int64.to_int b land 0xFFFFFFFF

(* Same total order as [before], read from the cached integer fields
   only: no boxed-float dereference, hence one cache line per cold cell
   instead of two on scheduler-internal sorted walks. Valid only for
   cells that went through [cache_time_bits] since their last [time]
   update. *)
(* Rewrite [time] from the bits cached by [cache_time_bits] — the
   exact same float, freshly boxed. Schedulers whose pop path would
   otherwise dereference the box stored at schedule time call this
   first: by dispatch that box is an old allocation, a guaranteed cold
   cache line at storm scale, while the cached bits live in the cell
   line the pop just touched anyway. *)
let refresh_time ev =
  ev.time <-
    Int64.float_of_bits
      (Int64.logor (Int64.shift_left (Int64.of_int ev.thi) 32) (Int64.of_int ev.tlo))

let before_bits a b =
  a.thi < b.thi
  || (a.thi = b.thi
     && (a.tlo < b.tlo
        || (a.tlo = b.tlo && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))))

(* Drop closure/label references so a freelisted cell does not retain
   dead continuations or strings across simulations. *)
let clear ev =
  ev.label <- "";
  ev.run <- nop;
  ev.next <- nil
