(** Calendar queue scheduler (R. Brown, CACM 1988).

    Events hash by time into a circular array of fixed-width "day"
    buckets, each a sorted intrusive list; the structure resizes and
    re-estimates the bucket width as the population grows or shrinks,
    giving O(1) amortised add/pop for reasonably uniform event-time
    distributions.

    Ordering contract: identical to {!Sched_event.before} — [(time,
    key, seq)] lexicographic — and bit-identical in dispatch order to
    {!Event_heap}. Bucket widths are powers of two so time-to-bucket
    mapping is exact float arithmetic, and the scan position is an
    integer virtual-bucket number, so no epsilon or drift can reorder
    events. *)

type t
(** A calendar queue of {!Sched_event.t} cells. *)

val create : ?nbuckets:int -> ?width:float -> unit -> t
(** A fresh, empty queue. [nbuckets] (default 256) is rounded up to a
    power of two; [width] (default [0x1p-17], ~7.6 us) must be a power
    of two. Both adapt automatically as events accumulate. *)

val length : t -> int
(** Number of events currently queued. *)

val is_empty : t -> bool
(** Whether no events are queued. *)

val add : t -> Sched_event.t -> unit
(** Insert an event cell; the queue owns the cell until {!pop} returns
    it. O(1) amortised (sorted insert within one bucket, occasional
    resize). *)

val pop : t -> Sched_event.t
(** Remove and return the minimum event per {!Sched_event.before};
    [Sched_event.nil] (test with [==]) when empty. *)

val peek_time : t -> float
(** Time of the earliest event without removing it; [infinity] when
    empty. May advance the internal scan position over empty buckets
    (observably pure). *)

val pop_until : t -> float -> Sched_event.t
(** [pop_until q limit] pops the minimum event if its time is [<= limit];
    [Sched_event.nil] when the queue is empty or the minimum lies beyond
    [limit]. Fused peek-then-pop for the engine's hot loop. *)
