(** Runtime invariant sanitizer.

    Default-off assertion layer for the simulation substrate: event-time
    monotonicity ({!Sim}), device queue bounds ({!Leed_blockdev.Blockdev}),
    token conservation (the I/O engine) and replication chain consistency
    (the cluster) all funnel through this module.

    Enable with [Sim.run ~checks:true] or by setting [LEED_SANITIZE=1] in
    the environment. When disabled every check is a single branch, so
    instrumented hot paths stay effectively free. *)

exception Violation of string
(** Raised by a failed check. The message names the violated invariant and
    the simulation time at which it tripped. *)

val active : unit -> bool
(** True when sanitizing. Guard expensive condition computations with this
    before calling {!require}. *)

val set_enabled : bool -> unit
(** Flip the global switch. {!Sim.run} drives this; tests may too. *)

val violate : invariant:string -> time:float -> string -> 'a
(** Unconditionally raise {!Violation} with a formatted diagnostic. *)

val require :
  invariant:string -> time:float -> bool -> detail:(unit -> string) -> unit
(** [require ~invariant ~time cond ~detail] raises {!Violation} when
    sanitizing is on and [cond] is false. [detail] is only forced on
    failure. No-op when sanitizing is off. *)

(** Token conservation ledger: an independent account of issued/consumed
    tokens cross-checked against the engine's own balance, enforcing
    issued = consumed + outstanding with no negative flows. Updates are
    no-ops when sanitizing is off. *)
module Tokens : sig
  type t

  val create : name:string -> t
  val issue : t -> time:float -> int -> unit
  val consume : t -> time:float -> int -> unit

  val issued : t -> int
  val consumed : t -> int
  val outstanding : t -> int

  val check_balance : t -> time:float -> expect_outstanding:int -> unit
  (** Cross-check the ledger against an externally tracked balance. *)
end
