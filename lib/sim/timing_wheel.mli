(** Hierarchical timing wheel scheduler with an overflow heap.

    A small sorted "front" list holds every event at or before the
    current edge; three 32768-slot wheel levels cover ~3.9 ms, ~128 s
    and ~48 days beyond it (at the default ~0.12 us tick), and an
    overflow heap absorbs everything past that horizon. Adds are O(1); the
    amortised pop cost is independent of the total pending count, which
    is where this scheduler beats the O(log n) binary heap at
    cluster-scale pending populations.

    Ordering contract: identical to {!Sched_event.before} — [(time,
    key, seq)] lexicographic — and bit-identical in dispatch order to
    {!Event_heap}. The tick is a power of two (exact time-to-tick
    mapping) and the edge is an integer tick index; the edge never
    passes an unmigrated event, and equal-time events always share a
    bucket, so no reordering is possible. *)

type t
(** A hierarchical timing wheel of {!Sched_event.t} cells. *)

val create : ?tick:float -> unit -> t
(** A fresh, empty wheel. [tick] (default [0x1p-23], ~0.12 us) is the
    level-0 slot granularity and must be a power of two. A fine tick
    matters at scale: per-tick occupancy bounds the sorted front-list
    insert walk, which is quadratic in events per tick. *)

val length : t -> int
(** Number of events currently queued. *)

val is_empty : t -> bool
(** Whether no events are queued. *)

val add : t -> Sched_event.t -> unit
(** Insert an event cell; the wheel owns the cell until {!pop} returns
    it. O(1). *)

val pop : t -> Sched_event.t
(** Remove and return the minimum event per {!Sched_event.before};
    [Sched_event.nil] (test with [==]) when empty. Amortised O(1): a
    head unlink from the sorted front list. *)

val peek_time : t -> float
(** Time of the earliest event without removing it; [infinity] when
    empty. May advance the wheel edge over empty slots (observably
    pure). *)

val pop_until : t -> float -> Sched_event.t
(** [pop_until w limit] pops the minimum event if its time is [<= limit];
    [Sched_event.nil] when the wheel is empty or the minimum lies beyond
    [limit]. Fused peek-then-pop for the engine's hot loop. *)
