(* Calendar queue scheduler (R. Brown, CACM '88).

   Events hash by time into a circular array of "day" buckets of fixed
   width; each bucket is a sorted intrusive list (Sched_event.before).
   A pop scans forward from the current day and returns the bucket head
   that belongs to the current "year", giving O(1) amortised add/pop
   when event times are reasonably uniform — the regime cluster-scale
   storms with hundreds of thousands of in-flight timers live in.

   Determinism: the dispatch order must be bit-identical to the binary
   heap's. Two properties guarantee it exactly, with no epsilon:

   - the bucket width is always a power of two, so [time / width] is an
     exact float operation (exponent shift) and the virtual bucket
     number of a time is a well-defined integer;
   - the scan position is that integer ([cur_vb]), never an accumulated
     float edge, so year-membership tests ([vb_of head.time = cur_vb])
     are exact integer comparisons.

   Equal-time events land in the same bucket (same virtual bucket
   number) where the sorted insert orders them by (key, seq), matching
   the heap's total order. *)

type t = {
  mutable buckets : Sched_event.t array; (* sorted intrusive lists; nil = empty *)
  mutable nbuckets : int; (* power of two *)
  mutable mask : int; (* nbuckets - 1 *)
  mutable width : float; (* bucket width in seconds; power of two *)
  mutable inv_width : float; (* 1 / width, exact *)
  mutable cur_vb : int; (* virtual bucket number of the scan position *)
  mutable count : int;
}

(* Virtual bucket number of a time: floor (time / width), computed
   exactly (power-of-two width). Times so far in the future that the
   quotient leaves integer range all clamp into one far bucket, where
   the sorted list keeps them correctly ordered. *)
let vb_of t time =
  let q = time *. t.inv_width in
  if q >= 4.0e18 then max_int / 2 else int_of_float q

let create ?(nbuckets = 256) ?(width = 0x1p-17) () =
  let n =
    let rec pow2 n = if n >= nbuckets then n else pow2 (2 * n) in
    pow2 16
  in
  {
    buckets = Array.make n Sched_event.nil;
    nbuckets = n;
    mask = n - 1;
    width;
    inv_width = 1. /. width;
    cur_vb = 0;
    count = 0;
  }

let length t = t.count
let is_empty t = t.count = 0

(* Insertion point for [ev] in the sorted list after [prev]. Top level
   with explicit arguments, not an inner closure capturing [ev]: this
   runs on every add and must not allocate. *)
let rec find_pos (prev : Sched_event.t) (ev : Sched_event.t) =
  let n = prev.Sched_event.next in
  if n != Sched_event.nil && Sched_event.before_bits n ev then find_pos n ev else prev

(* Sorted insert by Sched_event.before into the intrusive list rooted at
   buckets.(idx). *)
let insert_sorted t idx (ev : Sched_event.t) =
  let head = t.buckets.(idx) in
  if head == Sched_event.nil || Sched_event.before_bits ev head then begin
    ev.next <- head;
    t.buckets.(idx) <- ev
  end
  else begin
    let prev = find_pos head ev in
    ev.next <- prev.Sched_event.next;
    prev.Sched_event.next <- ev
  end

let place t ev =
  let vb = vb_of t ev.Sched_event.time in
  ev.Sched_event.tick <- vb;
  insert_sorted t (vb land t.mask) ev;
  (* Never let the scan position sit past a pending event: an add at the
     current instant may hash behind a scan that already skipped its
     (then-empty) bucket. *)
  if vb < t.cur_vb then t.cur_vb <- vb

(* Pick a new power-of-two width from the live event population: balance
   empty-bucket scan cost against sorted-insert chain length, which
   meet at width ~ span / count for roughly uniform times. *)
let ideal_width ~span ~count old =
  if span <= 0. || count = 0 then old
  else begin
    let ideal = span /. float_of_int count in
    let ideal = Float.min 1e6 (Float.max 1e-9 ideal) in
    (* Largest power of two <= 2 * ideal. *)
    let _, e = Float.frexp ideal in
    Float.ldexp 1.0 e
  end

let resize t nbuckets' =
  (* Unlink every cell, then re-place under the new geometry. *)
  let all = ref Sched_event.nil in
  let tmin = ref infinity and tmax = ref neg_infinity in
  Array.iteri
    (fun i head ->
      let cell = ref head in
      while !cell != Sched_event.nil do
        let next = !cell.Sched_event.next in
        if !cell.Sched_event.time < !tmin then tmin := !cell.Sched_event.time;
        if !cell.Sched_event.time > !tmax then tmax := !cell.Sched_event.time;
        !cell.Sched_event.next <- !all;
        all := !cell;
        cell := next
      done;
      t.buckets.(i) <- Sched_event.nil)
    t.buckets;
  let width = ideal_width ~span:(!tmax -. !tmin) ~count:t.count t.width in
  if nbuckets' <> t.nbuckets then begin
    t.buckets <- Array.make nbuckets' Sched_event.nil;
    t.nbuckets <- nbuckets';
    t.mask <- nbuckets' - 1
  end;
  t.width <- width;
  t.inv_width <- 1. /. width;
  t.cur_vb <- (if t.count = 0 then 0 else vb_of t !tmin);
  let cell = ref !all in
  while !cell != Sched_event.nil do
    let next = !cell.Sched_event.next in
    !cell.Sched_event.next <- Sched_event.nil;
    let vb = vb_of t !cell.Sched_event.time in
    !cell.Sched_event.tick <- vb;
    insert_sorted t (vb land t.mask) !cell;
    cell := next
  done

let add t ev =
  Sched_event.cache_time_bits ev;
  place t ev;
  t.count <- t.count + 1;
  if t.count > 2 * t.nbuckets then resize t (2 * t.nbuckets)

(* Fallback when a full circle of days is empty in the current year:
   jump the calendar straight to the globally minimal event. Bucket
   heads are each bucket's minimum (lists are sorted with time as the
   major component), so the global minimum is the minimal head. *)
let direct_search t =
  let best = ref Sched_event.nil in
  Array.iter
    (fun head ->
      if
        head != Sched_event.nil
        && (!best == Sched_event.nil || Sched_event.before head !best)
      then best := head)
    t.buckets;
  t.cur_vb <- vb_of t !best.Sched_event.time;
  !best

(* Advance the scan position to the next event and return it (without
   unlinking). Tail-recursive, not a [ref] loop: this runs on every pop
   and every peek. After [nbuckets] empty days the current year is
   proven empty and [direct_search] jumps the calendar. *)
let rec scan t steps =
  let idx = t.cur_vb land t.mask in
  let head = t.buckets.(idx) in
  if head != Sched_event.nil && head.Sched_event.tick = t.cur_vb then head
  else if steps + 1 >= t.nbuckets then direct_search t
  else begin
    t.cur_vb <- t.cur_vb + 1;
    scan t (steps + 1)
  end

(* Fused peek-and-pop: [Sched_event.nil] when empty or when the minimum
   lies beyond [limit]. The engine's hot loop uses this instead of
   peek-then-pop, avoiding a per-dispatch call and float boxing. *)
let pop_until t limit =
  if t.count = 0 then Sched_event.nil
  else begin
    let head = scan t 0 in
    (* Rebuild the time from the cached bits rather than dereferencing
       the cold box stored at schedule time (see Sched_event.refresh_time). *)
    Sched_event.refresh_time head;
    if head.Sched_event.time > limit then Sched_event.nil
    else begin
      t.buckets.(t.cur_vb land t.mask) <- head.Sched_event.next;
      head.Sched_event.next <- Sched_event.nil;
      t.count <- t.count - 1;
      if t.nbuckets > 64 && t.count < t.nbuckets / 8 then resize t (t.nbuckets / 2);
      head
    end
  end

let pop t = pop_until t infinity

let peek_time t =
  if t.count = 0 then infinity
  else begin
    let head = scan t 0 in
    Sched_event.refresh_time head;
    head.Sched_event.time
  end
