(** Binary min-heap of timestamped events.

    Ordering is (time, key, seq): events at equal times order by their
    tie-break [key] first, then by insertion order. The default FIFO
    policy assigns every event key 0 (pure insertion order); the race
    detector assigns seeded pseudo-random keys to explore alternative
    legal orderings of simultaneous events. *)

type event = { time : float; key : int; seq : int; label : string; run : unit -> unit }

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val add : t -> event -> unit

val pop : t -> event option
(** Remove and return the earliest event, [None] when empty. *)

val peek_time : t -> float option
(** Time of the earliest event without removing it. *)
