(** Binary min-heap of timestamped events — the reference scheduler.

    Ordering is {!Sched_event.before}: [(time, key, seq)] lexicographic.
    The default FIFO policy assigns every event key 0 (pure insertion
    order); the race detector assigns seeded pseudo-random keys to
    explore alternative legal orderings of simultaneous events.

    O(log n) [add]/[pop] regardless of the time distribution — the
    robust baseline the calendar queue and timing wheel are checked
    against for bit-identical dispatch order. *)

type t
(** An array-backed binary min-heap of {!Sched_event.t} cells. *)

val create : ?capacity:int -> unit -> t
(** A fresh, empty heap. [capacity] (default 64) sizes the initial
    backing array; the heap grows geometrically as needed. *)

val length : t -> int
(** Number of events currently queued. *)

val is_empty : t -> bool
(** Whether no events are queued. *)

val add : t -> Sched_event.t -> unit
(** Insert an event cell. The heap takes ownership of the cell until it
    is returned by {!pop}. *)

val pop : t -> Sched_event.t
(** Remove and return the minimum event per {!Sched_event.before};
    returns [Sched_event.nil] (test with [==]) when empty. *)

val peek_time : t -> float
(** Time of the earliest event without removing it; [infinity] when
    empty. *)

val pop_until : t -> float -> Sched_event.t
(** [pop_until h limit] pops the minimum event if its time is [<= limit];
    [Sched_event.nil] when the heap is empty or the minimum lies beyond
    [limit]. Equivalent to a [peek_time] test followed by [pop], fused so
    the hot loop performs one call and no float boxing. *)
