(** Binary min-heap of timestamped events.

    Ordering is (time, seq): events at equal times fire in insertion
    order, which keeps every simulation deterministic. *)

type event = { time : float; seq : int; run : unit -> unit }

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val add : t -> event -> unit

val pop : t -> event option
(** Remove and return the earliest event, [None] when empty. *)

val peek_time : t -> float option
(** Time of the earliest event without removing it. *)
