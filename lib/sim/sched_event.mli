(** Shared mutable event cell for the pluggable event schedulers.

    All {!Scheduler} implementations store these cells. [Sim] owns a
    freelist of them, so on the steady-state hot path scheduling an
    event mutates a recycled cell instead of allocating a record. The
    intrusive [next] link is used by the freelist and by the intrusive
    bucket/slot lists of the calendar queue and timing wheel; a cell is
    on at most one list at a time. *)

type t = {
  mutable time : float;  (** absolute virtual time of the event, seconds *)
  mutable thi : int;
  mutable tlo : int;
      (** scheduler-private cache of the IEEE-754 bits of [time], split
          hi/lo 32, set by {!cache_time_bits}. Lets {!before_bits} order
          cells without touching the boxed float. Placed (with [key],
          [seq], [next]) in the cell's first cache line so a sorted
          bucket walk over cold cells costs one line each; the
          dispatch-only [label]/[run] trail at the end. *)
  mutable key : int;  (** equal-time tie-break key (see {!Sim.tiebreak}) *)
  mutable seq : int;  (** global scheduling sequence number *)
  mutable next : t;  (** intrusive link; physically [nil] when unlinked *)
  mutable tick : int;
      (** scheduler-private cache: the timing wheel stores the event's
          integer tick index here at [add] (the calendar queue its
          virtual bucket number) so bucket walks never deref the boxed
          [time] float. Meaningless outside the scheduler that set it. *)
  mutable label : string;  (** process/timer label for attribution *)
  mutable run : unit -> unit;  (** the event body *)
}

val time : t -> float
(** The event's absolute virtual time (reads [time]). *)

val set_time : t -> float -> unit
(** Set the event's absolute virtual time. *)

val nil : t
(** Self-referencing sentinel. List ends and "no event" are represented
    by physical equality ([==]) with [nil] so the hot loop allocates no
    options. Never store or mutate [nil] itself. *)

val make : unit -> t
(** A fresh, unlinked cell (all fields inert, [next = nil]). *)

val before : t -> t -> bool
(** The scheduler ordering contract: [(time, key, seq)] lexicographic.
    Earlier time first; at equal times the smaller tie-break [key], then
    the smaller sequence number. Total order on distinct live cells
    (sequence numbers are unique within a run). *)

val cache_time_bits : t -> unit
(** Store the IEEE-754 bit pattern of [time] into [thi]/[tlo]. Call
    from a scheduler's [add] before relying on {!before_bits}. *)

val refresh_time : t -> unit
(** Rewrite [time] from the bits cached by {!cache_time_bits} — the
    bit-identical float, freshly boxed. For scheduler pop paths: the box
    stored at schedule time is a cold cache line by dispatch, while the
    cached bits sit in the cell line the pop already touched. *)

val before_bits : t -> t -> bool
(** Exactly the {!before} order, computed from the integer fields cached
    by {!cache_time_bits} — no boxed-float dereference, so a cold cell
    costs one cache line instead of two on sorted bucket walks. Sound
    because simulation times are nonnegative, where the IEEE-754 bit
    pattern is monotonic in the float value (ulp-exact, no epsilon). *)

val clear : t -> unit
(** Reset [label], [run] and [next] so a recycled cell retains no dead
    closures or strings. *)
