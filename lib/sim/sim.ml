(* Discrete-event simulation engine.

   Processes are ordinary OCaml functions that perform effects ([delay],
   [suspend], [spawn]); a deep effect handler turns each into a coroutine
   scheduled on a global event heap. Blocking synchronisation primitives
   (Ivar, Mailbox, Resource) are built on the single [suspend] primitive,
   whose resume closure is single-shot, making timeouts race-free. *)

exception Deadlock of string
exception Main_incomplete

(* How simultaneous events are ordered. FIFO (key 0 for every event) is
   the historical insertion-order behaviour; Perturbed keys each event
   with a seeded stateless hash of its sequence number, exploring a
   different — equally legal, equally deterministic — ordering of
   equal-time events. Perturb_first only perturbs the first [limit]
   scheduled events (the rest get the FIFO key 0), which is what lets
   the race detector bisect a divergence down to the single event whose
   reordering flips the observables. *)
type tiebreak = Fifo | Perturbed of int | Perturb_first of { seed : int; limit : int }

type dispatch = { d_time : float; d_seq : int; d_label : string }

type engine = {
  mutable now : float;
  mutable seq : int;
  heap : Event_heap.t;
  mutable stopped : bool;
  mutable spawned : int;
  mutable dispatched : int;
  keyfn : int -> int; (* seq -> equal-time ordering key, from [tiebreak] *)
  on_dispatch : (dispatch -> unit) option;
  mutable cur_label : string; (* label of the event being executed *)
}

let current : engine option ref = ref None

let get_engine () =
  match !current with
  | Some e -> e
  | None -> failwith "Sim: no simulation running (call inside Sim.run)"

let keyfn_of = function
  | Fifo -> fun _ -> 0
  | Perturbed seed -> fun seq -> Rng.hash2 seed seq
  | Perturb_first { seed; limit } -> fun seq -> if seq <= limit then Rng.hash2 seed seq else 0

let schedule ?label eng ~at run =
  (* [at >= now] is also false for NaN, so a poisoned latency computation
     trips here instead of silently freezing the heap order. *)
  Invariant.require ~invariant:"event-time-monotonicity" ~time:eng.now
    (at >= eng.now)
    ~detail:(fun () ->
      Printf.sprintf "event scheduled into the past (at=%.9g, now=%.9g)" at eng.now);
  eng.seq <- eng.seq + 1;
  let label = match label with Some l -> l | None -> eng.cur_label in
  Event_heap.add eng.heap
    { Event_heap.time = at; key = eng.keyfn eng.seq; seq = eng.seq; label; run }

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let exec : engine -> (unit -> unit) -> unit =
 fun eng f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay t ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule eng ~at:(eng.now +. t) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  (* The resume closure may run from any other process's
                     event; tag the wake-up with the suspended process's
                     own label, not the resumer's. *)
                  let label = eng.cur_label in
                  register (fun v ->
                      if not !resumed then begin
                        resumed := true;
                        schedule ~label eng ~at:eng.now (fun () -> continue k v)
                      end))
          | _ -> None);
    }

let now () = (get_engine ()).now
let delay t = if t > 0. then Effect.perform (Delay t) else ()
let suspend register = Effect.perform (Suspend register)

(* [spawn] and [after] are not effects: they only mutate the event heap, so
   they are callable from anywhere — including resume-registration callbacks
   that run outside any process handler. Unlabelled children inherit the
   spawner's label, so attribution stays allocation-free on hot paths. *)
let spawn ?label f =
  let eng = get_engine () in
  eng.spawned <- eng.spawned + 1;
  schedule ?label eng ~at:eng.now (fun () -> exec eng f)

(* Run [f] (non-blocking) after [t] seconds without creating a process. *)
let after t f =
  let eng = get_engine () in
  schedule eng ~at:(eng.now +. t) f
let yield () = Effect.perform (Delay 0.)

let stop () =
  let eng = get_engine () in
  eng.stopped <- true

(* Scheduler introspection, sampled by the observability layer. *)
let events_dispatched () = (get_engine ()).dispatched
let heap_depth () = Event_heap.length (get_engine ()).heap
let processes_spawned () = (get_engine ()).spawned

let run ?(until = infinity) ?checks ?(tiebreak = Fifo) ?on_dispatch (main : unit -> 'a) : 'a =
  let eng =
    {
      now = 0.;
      seq = 0;
      heap = Event_heap.create ();
      stopped = false;
      spawned = 0;
      dispatched = 0;
      keyfn = keyfn_of tiebreak;
      on_dispatch;
      cur_label = "main";
    }
  in
  let saved = !current in
  current := Some eng;
  let saved_checks = Invariant.active () in
  (match checks with Some b -> Invariant.set_enabled b | None -> ());
  let result = ref None in
  let main_done = ref false in
  schedule ~label:"main" eng ~at:0. (fun () ->
      exec eng (fun () ->
          result := Some (main ());
          main_done := true));
  let finish () =
    current := saved;
    Invariant.set_enabled saved_checks
  in
  (try
     let continue_loop = ref true in
     (* The loop ends as soon as the main process has its result: daemon
        processes (periodic compactors, heartbeats) must not keep the
        simulation alive forever. *)
     while !continue_loop && not eng.stopped && not !main_done do
       match Event_heap.pop eng.heap with
       | None -> continue_loop := false
       | Some ev ->
           if ev.Event_heap.time > until then begin
             eng.now <- until;
             continue_loop := false
           end
           else begin
             Invariant.require ~invariant:"event-time-monotonicity" ~time:eng.now
               (ev.Event_heap.time >= eng.now)
               ~detail:(fun () ->
                 Printf.sprintf "heap yielded an event at t=%.9g behind the clock"
                   ev.Event_heap.time);
             eng.now <- ev.Event_heap.time;
             eng.dispatched <- eng.dispatched + 1;
             eng.cur_label <- ev.Event_heap.label;
             (match eng.on_dispatch with
             | None -> ()
             | Some f ->
                 f
                   {
                     d_time = ev.Event_heap.time;
                     d_seq = ev.Event_heap.seq;
                     d_label = ev.Event_heap.label;
                   });
             ev.Event_heap.run ()
           end
     done
   with e ->
     finish ();
     raise e);
  finish ();
  match !result with
  | Some v -> v
  | None ->
      if until = infinity && not eng.stopped then
        raise
          (Deadlock
             (Printf.sprintf
                "main process blocked forever at t=%g with %d spawned processes"
                eng.now eng.spawned))
      else raise Main_incomplete

(* Time helpers: the simulation clock is in seconds. *)
let us x = x *. 1e-6
let ms x = x *. 1e-3
let to_us t = t *. 1e6

(* Virtual-time comparison helpers (epsilon-free: the clock only ever
   takes values that were scheduled, so exact float comparison is sound
   — but it belongs here, in one reviewed place, not scattered over the
   codebase where simlint R7 forbids it). *)
let reached t = now () >= t
let past t = now () > t
let same_instant t = now () = t

(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        List.iter (fun w -> w v) (List.rev waiters)

  let try_fill t v = match t.state with Full _ -> false | Empty _ -> fill t v; true
  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let on_fill t f =
    match t.state with
    | Full v -> f v
    | Empty ws -> t.state <- Empty (f :: ws)

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ -> suspend (fun resume -> on_fill t resume)

  (* [None] if the timeout elapses first. *)
  let read_timeout t timeout =
    match t.state with
    | Full v -> Some v
    | Empty _ ->
        suspend (fun resume ->
            on_fill t (fun v -> resume (Some v));
            after timeout (fun () -> resume None))
end

module Mailbox = struct
  type 'a t = { items : 'a Queue.t; mutable waiters : ('a -> unit) list }

  let create () = { items = Queue.create (); waiters = [] }
  let length t = Queue.length t.items
  let is_empty t = Queue.is_empty t.items

  let send t v =
    match t.waiters with
    | [] -> Queue.push v t.items
    | w :: rest ->
        t.waiters <- rest;
        w v

  let try_recv t = if Queue.is_empty t.items then None else Some (Queue.pop t.items)

  let add_waiter t w = t.waiters <- t.waiters @ [ w ]

  let remove_waiter t w = t.waiters <- List.filter (fun w' -> w' != w) t.waiters

  let recv t =
    match try_recv t with
    | Some v -> v
    | None -> suspend (fun resume -> add_waiter t resume)

  let recv_timeout t timeout =
    match try_recv t with
    | Some v -> Some v
    | None ->
        suspend (fun resume ->
            let waiter v = resume (Some v) in
            add_waiter t waiter;
            after timeout (fun () ->
                (* If the timeout loses the race this is a no-op thanks to
                   the single-shot resume; but we must drop the waiter so a
                   later send is not swallowed. *)
                remove_waiter t waiter;
                resume None))
end

module Resource = struct
  type waiter = { amount : int; wake : unit -> unit }

  type t = {
    name : string;
    capacity : int;
    mutable in_use : int;
    queue : waiter Queue.t;
    (* cumulative busy integral for utilisation reporting *)
    mutable busy_area : float;
    mutable last_change : float;
  }

  let create ?(name = "resource") ~capacity () =
    if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
    { name; capacity; in_use = 0; queue = Queue.create (); busy_area = 0.; last_change = 0. }

  let account t =
    let t_now = now () in
    t.busy_area <- t.busy_area +. (float_of_int t.in_use *. (t_now -. t.last_change));
    t.last_change <- t_now

  let in_use t = t.in_use
  let waiting t = Queue.length t.queue
  let capacity t = t.capacity

  let acquire ?(amount = 1) t =
    if amount > t.capacity then
      invalid_arg (Printf.sprintf "Resource.acquire: amount %d > capacity %d (%s)" amount t.capacity t.name);
    if Queue.is_empty t.queue && t.in_use + amount <= t.capacity then begin
      account t;
      t.in_use <- t.in_use + amount
    end
    else
      suspend (fun resume ->
          Queue.push { amount; wake = (fun () -> resume ()) } t.queue)

  let release ?(amount = 1) t =
    account t;
    t.in_use <- t.in_use - amount;
    if t.in_use < 0 then invalid_arg (Printf.sprintf "Resource.release: %s under-released" t.name);
    (* Wake waiters strictly in FIFO order while they fit. *)
    let rec wake () =
      match Queue.peek_opt t.queue with
      | Some w when t.in_use + w.amount <= t.capacity ->
          ignore (Queue.pop t.queue);
          account t;
          t.in_use <- t.in_use + w.amount;
          w.wake ();
          wake ()
      | _ -> ()
    in
    wake ()

  let with_ ?(amount = 1) t f =
    acquire ~amount t;
    match f () with
    | v ->
        release ~amount t;
        v
    | exception e ->
        release ~amount t;
        raise e

  let utilisation t =
    account t;
    if now () <= 0. then 0.
    else t.busy_area /. (float_of_int t.capacity *. now ())

  let busy_time t =
    account t;
    t.busy_area
end

(* Spawn all thunks and block until every one has finished. *)
let fork_join_named (fs : (string option * (unit -> unit)) list) =
  let n = List.length fs in
  if n = 0 then ()
  else begin
    let done_ = Ivar.create () in
    let remaining = ref n in
    List.iter
      (fun (label, f) ->
        spawn ?label (fun () ->
            f ();
            decr remaining;
            if !remaining = 0 then Ivar.fill done_ ()))
      fs;
    Ivar.read done_
  end

let fork_join fs = fork_join_named (List.map (fun f -> (None, f)) fs)

(* Run [f] every [period] until it returns [false]. *)
let every ~period f =
  spawn (fun () ->
      let rec loop () =
        delay period;
        if f () then loop ()
      in
      loop ())
