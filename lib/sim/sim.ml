(* Discrete-event simulation engine.

   Processes are ordinary OCaml functions that perform effects ([delay],
   [suspend], [spawn]); a deep effect handler turns each into a coroutine
   scheduled on a global event scheduler. Blocking synchronisation
   primitives (Ivar, Mailbox, Resource) are built on the single [suspend]
   primitive, whose resume closure is single-shot, making timeouts
   race-free.

   The scheduler is pluggable (Scheduler.kind): a binary heap (the
   reference), a calendar queue, or a hierarchical timing wheel. All
   three honour the same (time, key, seq) ordering contract exactly, so
   the dispatch sequence — and therefore every digest built on it — is
   bit-identical whichever one a run selects.

   The hot loop is allocation-lean: event cells are recycled through a
   per-engine freelist, so steady-state scheduling mutates a reused
   record instead of allocating one per event. *)

exception Deadlock of string
exception Main_incomplete

(* How simultaneous events are ordered. FIFO (key 0 for every event) is
   the historical insertion-order behaviour; Perturbed keys each event
   with a seeded stateless hash of its sequence number, exploring a
   different — equally legal, equally deterministic — ordering of
   equal-time events. Perturb_first only perturbs the first [limit]
   scheduled events (the rest get the FIFO key 0), which is what lets
   the race detector bisect a divergence down to the single event whose
   reordering flips the observables. *)
type tiebreak = Fifo | Perturbed of int | Perturb_first of { seed : int; limit : int }

type sched = Scheduler.kind = Binary_heap | Calendar | Wheel

type dispatch = { d_time : float; d_seq : int; d_label : string }

type engine = {
  mutable now : float;
  mutable seq : int;
  sched : Scheduler.t;
  mutable free : Sched_event.t; (* freelist of recycled event cells *)
  mutable stopped : bool;
  mutable spawned : int;
  mutable dispatched : int;
  mutable pending : int; (* events scheduled and not yet dispatched *)
  mutable max_pending : int; (* high-water mark of pending events *)
  keyfn : int -> int; (* seq -> equal-time ordering key, from [tiebreak] *)
  on_dispatch : (dispatch -> unit) option;
  mutable cur_label : string; (* label of the event being executed *)
}

let current : engine option ref = ref None

let get_engine () =
  match !current with
  | Some e -> e
  | None -> failwith "Sim: no simulation running (call inside Sim.run)"

let keyfn_of = function
  | Fifo -> fun _ -> 0
  | Perturbed seed -> fun seq -> Rng.hash2 seed seq
  | Perturb_first { seed; limit } -> fun seq -> if seq <= limit then Rng.hash2 seed seq else 0

let schedule ?label eng ~at run =
  (* [at >= now] is also false for NaN, so a poisoned latency computation
     trips here instead of silently freezing the dispatch order. Guarded
     on [active] so the off path does not allocate the detail closure —
     this is the hottest call site in the simulator. *)
  if Invariant.active () then
    Invariant.require ~invariant:"event-time-monotonicity" ~time:eng.now
      (at >= eng.now)
      ~detail:(fun () ->
        Printf.sprintf "event scheduled into the past (at=%.9g, now=%.9g)" at eng.now);
  eng.seq <- eng.seq + 1;
  (* Recycle an event cell from the freelist; allocate only when the
     pending population reaches a new high. *)
  let ev = eng.free in
  let ev =
    if ev == Sched_event.nil then Sched_event.make ()
    else begin
      eng.free <- ev.Sched_event.next;
      ev.Sched_event.next <- Sched_event.nil;
      ev
    end
  in
  ev.Sched_event.time <- at;
  ev.Sched_event.key <- eng.keyfn eng.seq;
  ev.Sched_event.seq <- eng.seq;
  ev.Sched_event.label <- (match label with Some l -> l | None -> eng.cur_label);
  ev.Sched_event.run <- run;
  Scheduler.add eng.sched ev;
  (* Tracked incrementally rather than asking the scheduler: one fewer
     closure call per scheduled event. *)
  eng.pending <- eng.pending + 1;
  if eng.pending > eng.max_pending then eng.max_pending <- eng.pending

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let exec : engine -> (unit -> unit) -> unit =
 fun eng f ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay t ->
              Some
                (fun (k : (a, _) continuation) ->
                  schedule eng ~at:(eng.now +. t) (fun () -> continue k ()))
          | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  let resumed = ref false in
                  (* The resume closure may run from any other process's
                     event; tag the wake-up with the suspended process's
                     own label, not the resumer's. *)
                  let label = eng.cur_label in
                  register (fun v ->
                      if not !resumed then begin
                        resumed := true;
                        schedule ~label eng ~at:eng.now (fun () -> continue k v)
                      end))
          | _ -> None);
    }

let now () = (get_engine ()).now
let delay t = if t > 0. then Effect.perform (Delay t) else ()
let suspend register = Effect.perform (Suspend register)

(* [spawn] and [after] are not effects: they only mutate the scheduler, so
   they are callable from anywhere — including resume-registration callbacks
   that run outside any process handler. Unlabelled children inherit the
   spawner's label, so attribution stays allocation-free on hot paths. *)
let spawn ?label f =
  let eng = get_engine () in
  eng.spawned <- eng.spawned + 1;
  schedule ?label eng ~at:eng.now (fun () -> exec eng f)

(* Run [f] (non-blocking) after [t] seconds without creating a process. *)
let after t f =
  let eng = get_engine () in
  schedule eng ~at:(eng.now +. t) f
let yield () = Effect.perform (Delay 0.)

let stop () =
  let eng = get_engine () in
  eng.stopped <- true

(* Scheduler introspection, sampled by the observability layer. *)
let events_dispatched () = (get_engine ()).dispatched
let heap_depth () = Scheduler.length (get_engine ()).sched
let max_pending_events () = (get_engine ()).max_pending
let processes_spawned () = (get_engine ()).spawned

let run ?(until = infinity) ?checks ?(tiebreak = Fifo) ?(sched = Binary_heap) ?on_dispatch
    (main : unit -> 'a) : 'a =
  let eng =
    {
      now = 0.;
      seq = 0;
      sched = Scheduler.create sched;
      free = Sched_event.nil;
      stopped = false;
      spawned = 0;
      dispatched = 0;
      pending = 0;
      max_pending = 0;
      keyfn = keyfn_of tiebreak;
      on_dispatch;
      cur_label = "main";
    }
  in
  let saved = !current in
  current := Some eng;
  let saved_checks = Invariant.active () in
  (match checks with Some b -> Invariant.set_enabled b | None -> ());
  let result = ref None in
  let main_done = ref false in
  schedule ~label:"main" eng ~at:0. (fun () ->
      exec eng (fun () ->
          result := Some (main ());
          main_done := true));
  let finish () =
    current := saved;
    Invariant.set_enabled saved_checks
  in
  (try
     let continue_loop = ref true in
     (* The loop ends as soon as the main process has its result: daemon
        processes (periodic compactors, heartbeats) must not keep the
        simulation alive forever. *)
     while !continue_loop && not eng.stopped && not !main_done do
       (* One fused scheduler call per dispatch: peek-then-pop through
          the closure record would box peek's float result every
          iteration. [nil] means empty or next-beyond-[until]; the two
          are told apart on the cold path below. *)
       let ev = Scheduler.pop_until eng.sched until in
       if ev == Sched_event.nil then begin
         if Scheduler.peek_time eng.sched < infinity then eng.now <- until;
         continue_loop := false
       end
       else begin
         (* Copy the cell's fields out and recycle it before dispatch:
            the event body is free to schedule (and thus reuse the
            cell) immediately. *)
         let time = ev.Sched_event.time in
         let seq = ev.Sched_event.seq in
         let label = ev.Sched_event.label in
         let run = ev.Sched_event.run in
         Sched_event.clear ev;
         ev.Sched_event.next <- eng.free;
         eng.free <- ev;
         (* Guarded on [active] like the one in [schedule]: the off path
            must not allocate the detail closure on every dispatch. *)
         if Invariant.active () then
           Invariant.require ~invariant:"event-time-monotonicity" ~time:eng.now
             (time >= eng.now)
             ~detail:(fun () ->
               Printf.sprintf "scheduler yielded an event at t=%.9g behind the clock" time);
         eng.now <- time;
         eng.dispatched <- eng.dispatched + 1;
         eng.pending <- eng.pending - 1;
         eng.cur_label <- label;
         (match eng.on_dispatch with
         | None -> ()
         | Some f -> f { d_time = time; d_seq = seq; d_label = label });
         run ()
       end
     done
   with e ->
     finish ();
     raise e);
  finish ();
  match !result with
  | Some v -> v
  | None ->
      if until = infinity && not eng.stopped then
        raise
          (Deadlock
             (Printf.sprintf
                "main process blocked forever at t=%g with %d spawned processes"
                eng.now eng.spawned))
      else raise Main_incomplete

(* Time helpers: the simulation clock is in seconds. *)
let us x = x *. 1e-6
let ms x = x *. 1e-3
let to_us t = t *. 1e6

(* Virtual-time comparison helpers (epsilon-free: the clock only ever
   takes values that were scheduled, so exact float comparison is sound
   — but it belongs here, in one reviewed place, not scattered over the
   codebase where simlint R7 forbids it). *)
let reached t = now () >= t
let past t = now () > t
let same_instant t = now () = t

(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        List.iter (fun w -> w v) (List.rev waiters)

  let try_fill t v = match t.state with Full _ -> false | Empty _ -> fill t v; true
  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let on_fill t f =
    match t.state with
    | Full v -> f v
    | Empty ws -> t.state <- Empty (f :: ws)

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ -> suspend (fun resume -> on_fill t resume)

  (* [None] if the timeout elapses first. *)
  let read_timeout t timeout =
    match t.state with
    | Full v -> Some v
    | Empty _ ->
        suspend (fun resume ->
            on_fill t (fun v -> resume (Some v));
            after timeout (fun () -> resume None))
end

module Mailbox = struct
  (* Waiters sit in a Queue; a timed-out waiter is tombstoned in place
     ([cancelled]) and dropped lazily when [send] reaches it. Enqueue,
     cancel and (amortised) dequeue are all O(1) — the previous
     representation appended to and filtered a plain list, which made a
     mailbox with n blocked receivers O(n) per operation. FIFO wake
     order is unchanged: live waiters wake strictly in arrival order. *)
  type 'a waiter = { mutable cancelled : bool; wake : 'a -> unit }
  type 'a t = { items : 'a Queue.t; waiters : 'a waiter Queue.t }

  let create () = { items = Queue.create (); waiters = Queue.create () }
  let length t = Queue.length t.items
  let is_empty t = Queue.is_empty t.items

  (* Oldest live waiter, discarding tombstones on the way. *)
  let rec next_waiter t =
    match Queue.take_opt t.waiters with
    | None -> None
    | Some w -> if w.cancelled then next_waiter t else Some w

  let send t v =
    match next_waiter t with
    | None -> Queue.push v t.items
    | Some w -> w.wake v

  let try_recv t = if Queue.is_empty t.items then None else Some (Queue.pop t.items)

  let recv t =
    match try_recv t with
    | Some v -> v
    | None ->
        suspend (fun resume -> Queue.push { cancelled = false; wake = resume } t.waiters)

  let recv_timeout t timeout =
    match try_recv t with
    | Some v -> Some v
    | None ->
        suspend (fun resume ->
            let w = { cancelled = false; wake = (fun v -> resume (Some v)) } in
            Queue.push w t.waiters;
            after timeout (fun () ->
                (* If the timeout loses the race this is a no-op thanks to
                   the single-shot resume; but the waiter must be
                   tombstoned so a later send is not swallowed. *)
                w.cancelled <- true;
                resume None))
end

module Resource = struct
  type waiter = { amount : int; wake : unit -> unit }

  type t = {
    name : string;
    capacity : int;
    mutable in_use : int;
    queue : waiter Queue.t;
    (* cumulative busy integral for utilisation reporting *)
    mutable busy_area : float;
    mutable last_change : float;
  }

  let create ?(name = "resource") ~capacity () =
    if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
    { name; capacity; in_use = 0; queue = Queue.create (); busy_area = 0.; last_change = 0. }

  let account t =
    let t_now = now () in
    t.busy_area <- t.busy_area +. (float_of_int t.in_use *. (t_now -. t.last_change));
    t.last_change <- t_now

  let in_use t = t.in_use
  let waiting t = Queue.length t.queue
  let capacity t = t.capacity

  let acquire ?(amount = 1) t =
    if amount > t.capacity then
      invalid_arg (Printf.sprintf "Resource.acquire: amount %d > capacity %d (%s)" amount t.capacity t.name);
    if Queue.is_empty t.queue && t.in_use + amount <= t.capacity then begin
      account t;
      t.in_use <- t.in_use + amount
    end
    else
      suspend (fun resume ->
          Queue.push { amount; wake = (fun () -> resume ()) } t.queue)

  let release ?(amount = 1) t =
    account t;
    t.in_use <- t.in_use - amount;
    if t.in_use < 0 then invalid_arg (Printf.sprintf "Resource.release: %s under-released" t.name);
    (* Wake waiters strictly in FIFO order while they fit. *)
    let rec wake () =
      match Queue.peek_opt t.queue with
      | Some w when t.in_use + w.amount <= t.capacity ->
          ignore (Queue.pop t.queue);
          account t;
          t.in_use <- t.in_use + w.amount;
          w.wake ();
          wake ()
      | _ -> ()
    in
    wake ()

  let with_ ?(amount = 1) t f =
    acquire ~amount t;
    match f () with
    | v ->
        release ~amount t;
        v
    | exception e ->
        release ~amount t;
        raise e

  let utilisation t =
    account t;
    if now () <= 0. then 0.
    else t.busy_area /. (float_of_int t.capacity *. now ())

  let busy_time t =
    account t;
    t.busy_area
end

(* Spawn all thunks and block until every one has finished. *)
let fork_join_named (fs : (string option * (unit -> unit)) list) =
  let n = List.length fs in
  if n = 0 then ()
  else begin
    let done_ = Ivar.create () in
    let remaining = ref n in
    List.iter
      (fun (label, f) ->
        spawn ?label (fun () ->
            f ();
            decr remaining;
            if !remaining = 0 then Ivar.fill done_ ()))
      fs;
    Ivar.read done_
  end

let fork_join fs = fork_join_named (List.map (fun f -> (None, f)) fs)

(* Run [f] every [period] until it returns [false]. *)
let every ~period f =
  spawn (fun () ->
      let rec loop () =
        delay period;
        if f () then loop ()
      in
      loop ())
