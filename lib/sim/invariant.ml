(* Runtime invariant sanitizer.

   A global, default-off switch guards every check so the instrumented hot
   paths cost one branch when sanitizing is disabled. The switch is flipped
   by [Sim.run ~checks:true] (or the LEED_SANITIZE=1 environment variable)
   and restored when the run finishes, so nested simulations inherit and
   then give back the setting.

   This module deliberately does not depend on [Sim]: call sites pass the
   simulation time explicitly, which keeps the dependency arrow pointing
   one way ([Sim] performs monotonicity checks through this module). *)

exception Violation of string

(* Reviewed singleton: the sanitizer arm/disarm flag is saved and
   restored by every [Sim.run], so runs cannot leak state into each
   other; it must predate the engine because [Sim] itself consults it. *)
(* simlint: allow toplevel-state *)
let enabled = ref false

let active () = !enabled
let set_enabled b = enabled := b

(* Honour the environment once at module init: running any binary under
   LEED_SANITIZE=1 sanitizes every simulation it performs, not just the
   ones that opted in with [~checks:true]. *)
let env_default =
  match Sys.getenv_opt "LEED_SANITIZE" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | Some _ | None -> false

let () = if env_default then enabled := true

let violate ~invariant ~time detail =
  raise
    (Violation
       (Printf.sprintf "invariant %S violated at t=%.9gs: %s" invariant time detail))

let require ~invariant ~time cond ~detail =
  if !enabled && not cond then violate ~invariant ~time (detail ())

(* ------------------------------------------------------------------ *)
(* Token conservation ledger (issued = consumed + outstanding).

   The I/O engine keeps its own [active_tokens] balance; the ledger is an
   independent account of the same flow, and the cross-check between the
   two is what catches a lost or double-released token. All updates are
   gated on [active] so the ledger is dead weight — two unread ints — when
   sanitizing is off. *)

module Tokens = struct
  type t = { name : string; mutable issued : int; mutable consumed : int }

  let create ~name = { name; issued = 0; consumed = 0 }

  let issued t = t.issued
  let consumed t = t.consumed
  let outstanding t = t.issued - t.consumed

  let issue t ~time n =
    if !enabled then begin
      if n <= 0 then
        violate ~invariant:"token-conservation" ~time
          (Printf.sprintf "%s: issued a non-positive batch of %d tokens" t.name n);
      t.issued <- t.issued + n
    end

  let consume t ~time n =
    if !enabled then begin
      if n <= 0 then
        violate ~invariant:"token-conservation" ~time
          (Printf.sprintf "%s: consumed a non-positive batch of %d tokens" t.name n);
      t.consumed <- t.consumed + n;
      if t.consumed > t.issued then
        violate ~invariant:"token-conservation" ~time
          (Printf.sprintf "%s: consumed %d tokens but only %d were ever issued"
             t.name t.consumed t.issued)
    end

  let check_balance t ~time ~expect_outstanding =
    require ~invariant:"token-conservation" ~time
      (outstanding t = expect_outstanding)
      ~detail:(fun () ->
        Printf.sprintf
          "%s: ledger says %d tokens outstanding (issued=%d consumed=%d) but the \
           engine's balance is %d"
          t.name (outstanding t) t.issued t.consumed expect_outstanding)
end
