(** Deterministic splittable PRNG (SplitMix64).

    Each stochastic component of the simulator owns a [t] split from a root
    seed, so streams are independent and adding consumers never perturbs
    existing ones. Not cryptographic. *)

type t

val create : int -> t
(** Seed a fresh generator. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises on non-positive bound. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed, for open-loop arrivals. *)

val normal : t -> mean:float -> stddev:float -> float
(** Normally distributed (Box–Muller); clamp at call sites if needed. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val hash2 : int -> int -> int
(** [hash2 k x] is a stateless keyed hash of [x] under key [k], uniform
    over non-negative ints. Unlike a stream draw it depends only on its
    inputs, so values are stable under event reordering. *)

val hash_float : int -> int -> int -> int -> float
(** [hash_float k a b c] is a stateless keyed hash of [(a, b, c)] under
    key [k], uniform in [0, 1). For per-message stochastic decisions
    (e.g. link loss) that must not depend on the order simultaneous
    events drew from a shared stream. *)
