(* Pluggable event scheduler for the DES engine.

   The SCHEDULER contract (module type [S]) is the ordering law every
   implementation must obey exactly: events come back in [(time, key,
   seq)] lexicographic order (Sched_event.before). The engine treats
   the scheduler as a black box, so any implementation that honours the
   contract produces bit-identical dispatch sequences — which is what
   keeps the race detector's digests and same-seed chaos runs stable
   across scheduler choices (test/test_sched.ml enforces it). *)

module Event = Sched_event

module type S = sig
  type t

  val name : string
  val create : unit -> t
  val add : t -> Event.t -> unit

  val pop : t -> Event.t
  (* Minimum per Event.before — (time, key, seq); Event.nil when empty. *)

  val pop_until : t -> float -> Event.t
  (* Pop the minimum if its time is <= the limit; Event.nil when empty
     or when the minimum lies beyond it. Fused peek-then-pop: the
     engine's hot loop makes one call and boxes no float. *)

  val peek_time : t -> float
  (* Time of the minimum without removing; infinity when empty. *)

  val length : t -> int
end

type kind = Binary_heap | Calendar | Wheel

module Heap_impl : S with type t = Event_heap.t = struct
  type t = Event_heap.t

  let name = "heap"
  let create () = Event_heap.create ()
  let add = Event_heap.add
  let pop = Event_heap.pop
  let pop_until = Event_heap.pop_until
  let peek_time = Event_heap.peek_time
  let length = Event_heap.length
end

module Calendar_impl : S with type t = Calendar_queue.t = struct
  type t = Calendar_queue.t

  let name = "calendar"
  let create () = Calendar_queue.create ()
  let add = Calendar_queue.add
  let pop = Calendar_queue.pop
  let pop_until = Calendar_queue.pop_until
  let peek_time = Calendar_queue.peek_time
  let length = Calendar_queue.length
end

module Wheel_impl : S with type t = Timing_wheel.t = struct
  type t = Timing_wheel.t

  let name = "wheel"
  let create () = Timing_wheel.create ()
  let add = Timing_wheel.add
  let pop = Timing_wheel.pop
  let pop_until = Timing_wheel.pop_until
  let peek_time = Timing_wheel.peek_time
  let length = Timing_wheel.length
end

(* The engine's hot loop goes through these closures; one existential
   record per run, zero per-event allocation. *)
type t = {
  kind : kind;
  add : Event.t -> unit;
  pop : unit -> Event.t;
  pop_until : float -> Event.t;
  peek_time : unit -> float;
  length : unit -> int;
}

let make (type a) (module M : S with type t = a) kind =
  let st = M.create () in
  {
    kind;
    add = (fun ev -> M.add st ev);
    pop = (fun () -> M.pop st);
    pop_until = (fun limit -> M.pop_until st limit);
    peek_time = (fun () -> M.peek_time st);
    length = (fun () -> M.length st);
  }

let create = function
  | Binary_heap -> make (module Heap_impl) Binary_heap
  | Calendar -> make (module Calendar_impl) Calendar
  | Wheel -> make (module Wheel_impl) Wheel

let kind t = t.kind
let add t ev = t.add ev
let pop t = t.pop ()
let pop_until t limit = t.pop_until limit
let peek_time t = t.peek_time ()
let length t = t.length ()

let name = function Binary_heap -> "heap" | Calendar -> "calendar" | Wheel -> "wheel"
let kinds = [ Binary_heap; Calendar; Wheel ]
let names = List.map name kinds

let of_name = function
  | "heap" | "binary-heap" -> Some Binary_heap
  | "calendar" | "calendar-queue" -> Some Calendar
  | "wheel" | "timing-wheel" -> Some Wheel
  | _ -> None
