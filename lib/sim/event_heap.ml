(* Binary min-heap of timestamped events — the reference scheduler.

   Ordering is Sched_event.before: (time, key, seq). Under the default
   FIFO tie-break policy every key is 0, so equal-time events fire in
   insertion order; the race detector assigns seeded pseudo-random keys
   instead, exploring a different — but still fully deterministic —
   legal ordering of simultaneous events (see Sim.tiebreak).

   The API is allocation-free: [pop] returns [Sched_event.nil] (tested
   with [==]) instead of an option, and [peek_time] returns [infinity]
   when empty. *)

type t = { mutable arr : Sched_event.t array; mutable len : int }

let create ?(capacity = 64) () =
  { arr = Array.make (max 1 capacity) Sched_event.nil; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let before = Sched_event.before

let grow h =
  let arr = Array.make (2 * Array.length h.arr) Sched_event.nil in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

(* The sift loops are top-level functions with explicit arguments, not
   inner closures: a closure capturing [h] would allocate on every
   add/pop, and these are the engine's hottest operations. *)
let rec sift_up h ev i =
  if i = 0 then h.arr.(0) <- ev
  else
    let p = (i - 1) / 2 in
    if before ev h.arr.(p) then begin
      h.arr.(i) <- h.arr.(p);
      sift_up h ev p
    end
    else h.arr.(i) <- ev

let add h ev =
  if h.len = Array.length h.arr then grow h;
  let i = h.len in
  h.len <- h.len + 1;
  sift_up h ev i

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.len && before h.arr.(l) h.arr.(i) then l else i in
  let m = if r < h.len && before h.arr.(r) h.arr.(m) then r else m in
  if m <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(m);
    h.arr.(m) <- tmp;
    sift_down h m
  end

let pop h =
  if h.len = 0 then Sched_event.nil
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    let last = h.arr.(h.len) in
    h.arr.(h.len) <- Sched_event.nil;
    if h.len > 0 then begin
      h.arr.(0) <- last;
      sift_down h 0
    end;
    top
  end

let peek_time h = if h.len = 0 then infinity else h.arr.(0).Sched_event.time

(* One call instead of peek-then-pop in the engine loop: a [peek_time]
   through the scheduler's closure record boxes its float result on
   every dispatch, which this fused form avoids entirely. *)
let pop_until h limit =
  if h.len = 0 then Sched_event.nil
  else if h.arr.(0).Sched_event.time > limit then Sched_event.nil
  else pop h
