(* Binary min-heap of timestamped events.

   Ordering is (time, key, seq): events at equal times order by [key]
   first, then insertion order. Under the default FIFO tie-break policy
   every key is 0, so equal-time events fire in insertion order; the
   race detector assigns seeded pseudo-random keys instead, exploring a
   different — but still fully deterministic — legal ordering of
   simultaneous events (see Sim.tiebreak). *)

type event = { time : float; key : int; seq : int; label : string; run : unit -> unit }

type t = { mutable arr : event array; mutable len : int }

let dummy = { time = 0.; key = 0; seq = 0; label = ""; run = (fun () -> ()) }

let create () = { arr = Array.make 64 dummy; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let before a b =
  a.time < b.time
  || (a.time = b.time && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))

let grow h =
  let arr = Array.make (2 * Array.length h.arr) dummy in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let add h ev =
  if h.len = Array.length h.arr then grow h;
  let rec up i =
    if i = 0 then h.arr.(0) <- ev
    else
      let p = (i - 1) / 2 in
      if before ev h.arr.(p) then begin
        h.arr.(i) <- h.arr.(p);
        up p
      end
      else h.arr.(i) <- ev
  in
  let i = h.len in
  h.len <- h.len + 1;
  up i

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    let last = h.arr.(h.len) in
    h.arr.(h.len) <- dummy;
    if h.len > 0 then begin
      h.arr.(0) <- last;
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = ref i in
        if l < h.len && before h.arr.(l) h.arr.(!m) then m := l;
        if r < h.len && before h.arr.(r) h.arr.(!m) then m := r;
        if !m <> i then begin
          let tmp = h.arr.(i) in
          h.arr.(i) <- h.arr.(!m);
          h.arr.(!m) <- tmp;
          down !m
        end
      in
      down 0
    end;
    Some top
  end

let peek_time h = if h.len = 0 then None else Some h.arr.(0).time
